#include "src/net/async.hpp"

#include <gtest/gtest.h>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

namespace dima::net {
namespace {

/// Minimal protocol for synchronizer plumbing tests: every node must hear
/// one message from each neighbor; one sub-round per cycle; done after
/// `targetCycles` cycles of full gossip.
struct CountingProtocol {
  struct Msg {
    std::uint64_t cycle = 0;
  };
  using Message = Msg;

  CountingProtocol(const graph::Graph& g, std::uint64_t targetCycles)
      : graph(&g), target(targetCycles), heardPerCycle(g.numVertices()),
        cyclesDone(g.numVertices(), 0) {}

  int subRounds() const { return 1; }
  void beginCycle(NodeId u) {
    if (!done(u)) heardPerCycle[u] = 0;
  }
  void send(NodeId u, int, SyncNetwork<Msg>& net) {
    if (!done(u) && graph->degree(u) > 0) {
      net.broadcast(u, Msg{cyclesDone[u]});
    }
  }
  void receive(NodeId u, int, Inbox<Msg> inbox) {
    heardPerCycle[u] += inbox.size();
  }
  void endCycle(NodeId u) {
    if (!done(u)) ++cyclesDone[u];
  }
  bool done(NodeId u) const { return cyclesDone[u] >= target; }

  const graph::Graph* graph;
  std::uint64_t target;
  std::vector<std::size_t> heardPerCycle;
  std::vector<std::uint64_t> cyclesDone;
};

TEST(AlphaSynchronizer, RunsASimpleProtocolToCompletion) {
  const graph::Graph g = graph::cycle(8);
  CountingProtocol proto(g, 3);
  const AsyncRunResult result = runAlphaSynchronized(proto, g);
  EXPECT_TRUE(result.converged);
  for (NodeId u = 0; u < 8; ++u) EXPECT_TRUE(proto.done(u));
  EXPECT_GT(result.simTime, 0.0);
}

TEST(AlphaSynchronizer, EveryPulseDeliversTheFullSynchronousInbox) {
  // On a cycle each node hears exactly 2 messages per active cycle — the
  // synchronizer must never deliver a partial inbox.
  const graph::Graph g = graph::cycle(10);
  CountingProtocol proto(g, 1);
  (void)runAlphaSynchronized(proto, g);
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(proto.heardPerCycle[u], 2u) << "node " << u;
  }
}

TEST(AlphaSynchronizer, MessageAccountingAddsUp) {
  const graph::Graph g = graph::complete(6);
  CountingProtocol proto(g, 2);
  const AsyncRunResult result = runAlphaSynchronized(proto, g);
  ASSERT_TRUE(result.converged);
  // Every payload is acked exactly once.
  EXPECT_EQ(result.payloadMessages, result.ackMessages);
  // Safety notifications flow every pulse from every node.
  EXPECT_GT(result.safeMessages, 0u);
  EXPECT_EQ(result.totalMessages(),
            result.payloadMessages + result.ackMessages +
                result.safeMessages);
}

TEST(AlphaSynchronizer, EmptyAndTrivialGraphs) {
  const graph::Graph empty(0);
  CountingProtocol proto(empty, 1);
  const AsyncRunResult result = runAlphaSynchronized(proto, empty);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.pulses, 0u);
}

TEST(AlphaSynchronizer, DeterministicInDelaySeed) {
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(30, 4.0, rng);
  auto runOnce = [&](std::uint64_t seed) {
    coloring::MadecOptions options;
    options.seed = 9;
    DelayModel delays;
    delays.seed = seed;
    AsyncRunResult stats;
    const auto result =
        coloring::colorEdgesMadecAsync(g, options, delays, &stats);
    return std::make_pair(result.colors, stats.simTime);
  };
  const auto [colorsA, timeA] = runOnce(1);
  const auto [colorsB, timeB] = runOnce(1);
  EXPECT_EQ(colorsA, colorsB);
  EXPECT_DOUBLE_EQ(timeA, timeB);
  const auto [colorsC, timeC] = runOnce(2);
  // Different delays, same logical result (see the equivalence test), but
  // different simulated completion times almost surely.
  EXPECT_EQ(colorsA, colorsC);
  EXPECT_NE(timeA, timeC);
}

TEST(AlphaSynchronizer, MadecAsyncMatchesSynchronousBitForBit) {
  // The headline property: running Algorithm 1 through the synchronizer on
  // an asynchronous network yields the *identical* coloring and metrics-
  // relevant behaviour as the lockstep engine.
  support::Rng rng(4);
  for (int i = 0; i < 3; ++i) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(60, 5.0, rng);
    coloring::MadecOptions options;
    options.seed = 100 + static_cast<std::uint64_t>(i);
    const auto sync = coloring::colorEdgesMadec(g, options);
    AsyncRunResult stats;
    const auto async =
        coloring::colorEdgesMadecAsync(g, options, {}, &stats);
    ASSERT_TRUE(sync.metrics.converged);
    ASSERT_TRUE(async.metrics.converged);
    EXPECT_EQ(sync.colors, async.colors);
    EXPECT_TRUE(coloring::verifyEdgeColoring(g, async.colors));
    // The synchronizer pays ~3 messages (payload+ack+safe) per point-to-
    // point payload, and payloads replace broadcasts at cost deg(u) each.
    EXPECT_GT(stats.totalMessages(), sync.metrics.broadcasts);
  }
}

TEST(AlphaSynchronizer, ReportsSynchronizationOverhead) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 6.0, rng);
  coloring::MadecOptions options;
  options.seed = 7;
  AsyncRunResult stats;
  const auto result = coloring::colorEdgesMadecAsync(g, options, {}, &stats);
  ASSERT_TRUE(result.metrics.converged);
  // ack count mirrors payload count; safe messages are 2m per pulse-ish.
  EXPECT_EQ(stats.payloadMessages, stats.ackMessages);
  EXPECT_GE(stats.safeMessages, stats.payloadMessages / 4);
  EXPECT_GT(stats.simTime, 0.0);
}

TEST(AlphaSynchronizerDeathTest, RejectsFaultInjection) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  coloring::MadecOptions options;
  options.faults.dropProbability = 0.5;
  EXPECT_DEATH(coloring::colorEdgesMadecAsync(g, options), "reliable");
}

}  // namespace
}  // namespace dima::net
