#include "src/support/bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/support/rng.hpp"

namespace dima::support {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.firstClear(), 0u);
  EXPECT_EQ(b.firstSet(), DynamicBitset::npos);
}

TEST(DynamicBitset, SetGrowsAutomatically) {
  DynamicBitset b;
  b.set(100);
  EXPECT_GE(b.size(), 101u);
  EXPECT_TRUE(b.test(100));
  EXPECT_FALSE(b.test(99));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, OutOfRangeReadsAsClear) {
  DynamicBitset b(4);
  EXPECT_FALSE(b.test(1000));
}

TEST(DynamicBitset, ResetAndClear) {
  DynamicBitset b;
  b.set(3);
  b.set(64);
  b.reset(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_TRUE(b.test(64));
  b.reset(9999);  // out of range: no-op
  b.clear();
  EXPECT_TRUE(b.none());
  EXPECT_GE(b.size(), 65u);  // size preserved
}

TEST(DynamicBitset, FirstClearFindsLowestHole) {
  DynamicBitset b;
  b.set(0);
  b.set(1);
  b.set(3);
  EXPECT_EQ(b.firstClear(), 2u);
  b.set(2);
  EXPECT_EQ(b.firstClear(), 4u);
}

TEST(DynamicBitset, FirstClearOnFullWordBoundary) {
  DynamicBitset b;
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  EXPECT_EQ(b.firstClear(), 64u);
  for (std::size_t i = 64; i < 128; ++i) b.set(i);
  EXPECT_EQ(b.firstClear(), 128u);
}

TEST(DynamicBitset, FirstClearAlsoClearInUnionSemantics) {
  DynamicBitset a, b;
  a.set(0);
  b.set(1);
  a.set(2);
  b.set(3);
  EXPECT_EQ(a.firstClearAlsoClearIn(b), 4u);
  // Asymmetric sizes: the tail of the longer operand matters.
  DynamicBitset longOne;
  for (std::size_t i = 0; i < 70; ++i) longOne.set(i);
  DynamicBitset shortOne;
  shortOne.set(0);
  EXPECT_EQ(longOne.firstClearAlsoClearIn(shortOne), 70u);
  EXPECT_EQ(shortOne.firstClearAlsoClearIn(longOne), 70u);
}

TEST(DynamicBitset, FirstClearAlsoClearInBothEmpty) {
  DynamicBitset a, b;
  EXPECT_EQ(a.firstClearAlsoClearIn(b), 0u);
}

TEST(DynamicBitset, SetBitIteration) {
  DynamicBitset b;
  const std::set<std::size_t> expected{1, 5, 63, 64, 130};
  for (std::size_t i : expected) b.set(i);
  std::set<std::size_t> seen;
  for (std::size_t i = b.firstSet(); i != DynamicBitset::npos;
       i = b.nextSet(i)) {
    seen.insert(i);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.setBits(), std::vector<std::size_t>({1, 5, 63, 64, 130}));
}

TEST(DynamicBitset, OrMergesAndGrows) {
  DynamicBitset a, b;
  a.set(1);
  b.set(100);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(a.count(), 2u);
}

TEST(DynamicBitset, AndIntersects) {
  DynamicBitset a, b;
  a.set(1);
  a.set(2);
  a.set(200);
  b.set(2);
  b.set(3);
  a &= b;
  EXPECT_EQ(a.setBits(), std::vector<std::size_t>{2});
}

TEST(DynamicBitset, MinusRemoves) {
  DynamicBitset a, b;
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(300);
  a -= b;
  EXPECT_EQ(a.setBits(), std::vector<std::size_t>{1});
}

TEST(DynamicBitset, IntersectsDetectsSharedBit) {
  DynamicBitset a, b;
  a.set(64);
  EXPECT_FALSE(a.intersects(b));
  b.set(64);
  EXPECT_TRUE(a.intersects(b));
  b.reset(64);
  b.set(65);
  EXPECT_FALSE(a.intersects(b));
}

TEST(DynamicBitset, EqualityIgnoresCapacityDifferences) {
  DynamicBitset a(10), b(500);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  b.set(400);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, ToStringRendersLowestFirst) {
  DynamicBitset b(4);
  b.set(1);
  EXPECT_EQ(b.toString(), "0100");
}

TEST(DynamicBitset, ShrinkingResizeDropsHighBits) {
  DynamicBitset b;
  b.set(10);
  b.set(2);
  b.resize(5);
  EXPECT_TRUE(b.test(2));
  EXPECT_FALSE(b.test(10));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, RandomizedAgainstReferenceSet) {
  Rng rng(55);
  DynamicBitset b;
  std::set<std::size_t> reference;
  for (int step = 0; step < 3000; ++step) {
    const auto bit = static_cast<std::size_t>(rng.below(400));
    if (rng.coin()) {
      b.set(bit);
      reference.insert(bit);
    } else {
      b.reset(bit);
      reference.erase(bit);
    }
  }
  EXPECT_EQ(b.count(), reference.size());
  std::size_t expectedFirstClear = 0;
  while (reference.contains(expectedFirstClear)) ++expectedFirstClear;
  EXPECT_EQ(b.firstClear(), expectedFirstClear);
  const auto bits = b.setBits();
  EXPECT_TRUE(std::equal(bits.begin(), bits.end(), reference.begin(),
                         reference.end()));
}

}  // namespace
}  // namespace dima::support
