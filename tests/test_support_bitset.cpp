#include "src/support/bitset.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <utility>
#include <vector>

#include "src/support/rng.hpp"

namespace dima::support {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.firstClear(), 0u);
  EXPECT_EQ(b.firstSet(), DynamicBitset::npos);
}

TEST(DynamicBitset, SetGrowsAutomatically) {
  DynamicBitset b;
  b.set(100);
  EXPECT_GE(b.size(), 101u);
  EXPECT_TRUE(b.test(100));
  EXPECT_FALSE(b.test(99));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, OutOfRangeReadsAsClear) {
  DynamicBitset b(4);
  EXPECT_FALSE(b.test(1000));
}

TEST(DynamicBitset, ResetAndClear) {
  DynamicBitset b;
  b.set(3);
  b.set(64);
  b.reset(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_TRUE(b.test(64));
  b.reset(9999);  // out of range: no-op
  b.clear();
  EXPECT_TRUE(b.none());
  EXPECT_GE(b.size(), 65u);  // size preserved
}

TEST(DynamicBitset, FirstClearFindsLowestHole) {
  DynamicBitset b;
  b.set(0);
  b.set(1);
  b.set(3);
  EXPECT_EQ(b.firstClear(), 2u);
  b.set(2);
  EXPECT_EQ(b.firstClear(), 4u);
}

TEST(DynamicBitset, FirstClearOnFullWordBoundary) {
  DynamicBitset b;
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  EXPECT_EQ(b.firstClear(), 64u);
  for (std::size_t i = 64; i < 128; ++i) b.set(i);
  EXPECT_EQ(b.firstClear(), 128u);
}

TEST(DynamicBitset, FirstClearAlsoClearInUnionSemantics) {
  DynamicBitset a, b;
  a.set(0);
  b.set(1);
  a.set(2);
  b.set(3);
  EXPECT_EQ(a.firstClearAlsoClearIn(b), 4u);
  // Asymmetric sizes: the tail of the longer operand matters.
  DynamicBitset longOne;
  for (std::size_t i = 0; i < 70; ++i) longOne.set(i);
  DynamicBitset shortOne;
  shortOne.set(0);
  EXPECT_EQ(longOne.firstClearAlsoClearIn(shortOne), 70u);
  EXPECT_EQ(shortOne.firstClearAlsoClearIn(longOne), 70u);
}

TEST(DynamicBitset, FirstClearAlsoClearInBothEmpty) {
  DynamicBitset a, b;
  EXPECT_EQ(a.firstClearAlsoClearIn(b), 0u);
}

TEST(DynamicBitset, SetBitIteration) {
  DynamicBitset b;
  const std::set<std::size_t> expected{1, 5, 63, 64, 130};
  for (std::size_t i : expected) b.set(i);
  std::set<std::size_t> seen;
  for (std::size_t i = b.firstSet(); i != DynamicBitset::npos;
       i = b.nextSet(i)) {
    seen.insert(i);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.setBits(), std::vector<std::size_t>({1, 5, 63, 64, 130}));
}

TEST(DynamicBitset, OrMergesAndGrows) {
  DynamicBitset a, b;
  a.set(1);
  b.set(100);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(a.count(), 2u);
}

TEST(DynamicBitset, AndIntersects) {
  DynamicBitset a, b;
  a.set(1);
  a.set(2);
  a.set(200);
  b.set(2);
  b.set(3);
  a &= b;
  EXPECT_EQ(a.setBits(), std::vector<std::size_t>{2});
}

TEST(DynamicBitset, MinusRemoves) {
  DynamicBitset a, b;
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(300);
  a -= b;
  EXPECT_EQ(a.setBits(), std::vector<std::size_t>{1});
}

TEST(DynamicBitset, IntersectsDetectsSharedBit) {
  DynamicBitset a, b;
  a.set(64);
  EXPECT_FALSE(a.intersects(b));
  b.set(64);
  EXPECT_TRUE(a.intersects(b));
  b.reset(64);
  b.set(65);
  EXPECT_FALSE(a.intersects(b));
}

TEST(DynamicBitset, EqualityIgnoresCapacityDifferences) {
  DynamicBitset a(10), b(500);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  b.set(400);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, ToStringRendersLowestFirst) {
  DynamicBitset b(4);
  b.set(1);
  EXPECT_EQ(b.toString(), "0100");
}

TEST(DynamicBitset, ShrinkingResizeDropsHighBits) {
  DynamicBitset b;
  b.set(10);
  b.set(2);
  b.resize(5);
  EXPECT_TRUE(b.test(2));
  EXPECT_FALSE(b.test(10));
  EXPECT_EQ(b.count(), 1u);
}

// --- Word-level primitives for the bit-plane engine -----------------------
// The sizes 63/64/65 straddle a word boundary: 63 exercises a masked tail
// word, 64 an exactly-full word, 65 a one-bit tail word. Each primitive must
// honor the "bits >= size() are clear" invariant at all three.

TEST(DynamicBitsetWords, WordsSpanReflectsSizeAndTailMask) {
  for (const std::size_t n : {63u, 64u, 65u}) {
    DynamicBitset b(n);
    for (std::size_t i = 0; i < n; ++i) b.set(i);
    const auto words = b.words();
    EXPECT_EQ(words.size(), (n + 63) / 64) << n;
    // All in-range bits set; any padding bits in the last word must be clear.
    std::size_t pop = 0;
    for (const auto w : words) pop += static_cast<std::size_t>(std::popcount(w));
    EXPECT_EQ(pop, n) << n;
  }
}

TEST(DynamicBitsetWords, ForEachSetWordSkipsZeroWordsAndAscends) {
  DynamicBitset b(200);
  b.set(1);
  b.set(130);
  b.set(131);
  std::vector<std::pair<std::size_t, DynamicBitset::Word>> seen;
  b.forEachSetWord([&](std::size_t w, DynamicBitset::Word bits) {
    seen.emplace_back(w, bits);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_EQ(seen[0].second, DynamicBitset::Word{1} << 1);
  EXPECT_EQ(seen[1].first, 2u);
  EXPECT_EQ(seen[1].second, (DynamicBitset::Word{1} << 2) |
                                (DynamicBitset::Word{1} << 3));
}

TEST(DynamicBitsetWords, ForEachSetWordTailMaskedAt63And65) {
  for (const std::size_t n : {63u, 65u}) {
    DynamicBitset b(n);
    b.set(n - 1);
    std::size_t calls = 0;
    b.forEachSetWord([&](std::size_t w, DynamicBitset::Word bits) {
      ++calls;
      EXPECT_EQ(w, (n - 1) / 64) << n;
      EXPECT_EQ(bits, DynamicBitset::Word{1} << ((n - 1) % 64)) << n;
    });
    EXPECT_EQ(calls, 1u) << n;
  }
}

TEST(DynamicBitsetWords, AndNotIntoMatchesOperatorMinusAtBoundarySizes) {
  Rng rng(63);
  for (const std::size_t n : {63u, 64u, 65u, 130u}) {
    DynamicBitset a(n);
    DynamicBitset mask(n / 2);  // shorter operand: tail must pass through
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.coin()) a.set(i);
      if (i < n / 2 && rng.coin()) mask.set(i);
    }
    DynamicBitset out;
    a.andNotInto(mask, out);
    DynamicBitset expected = a;
    expected -= mask;
    EXPECT_EQ(out, expected) << n;
    EXPECT_EQ(out.size(), a.size()) << n;
    // Operands untouched.
    EXPECT_EQ(a.count() >= out.count(), true) << n;
  }
}

TEST(DynamicBitsetWords, AndNotIntoReusesDestinationAtFullWord) {
  DynamicBitset a(64);
  DynamicBitset b(64);
  for (std::size_t i = 0; i < 64; ++i) a.set(i);
  b.set(0);
  b.set(63);
  DynamicBitset out(7);  // stale, differently sized destination
  out.set(3);
  a.andNotInto(b, out);
  EXPECT_EQ(out.size(), 64u);
  EXPECT_EQ(out.count(), 62u);
  EXPECT_FALSE(out.test(0));
  EXPECT_FALSE(out.test(63));
  EXPECT_TRUE(out.test(1));
}

TEST(DynamicBitsetWords, FirstClearInWordsMatchesBitsetForm) {
  Rng rng(64);
  for (const std::size_t n : {63u, 64u, 65u}) {
    DynamicBitset a(n);
    DynamicBitset b(n + 64);  // differing word counts: tail path
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.coin()) a.set(i);
    }
    for (std::size_t i = 0; i + 64 < n + 64; ++i) {
      if (rng.coin()) b.set(i);
    }
    EXPECT_EQ(DynamicBitset::firstClearInWords(a.words(), b.words()),
              a.firstClearAlsoClearIn(b))
        << n;
  }
}

TEST(DynamicBitsetWords, FirstClearInWordsSaturatedSpans) {
  // Both spans fully set: the first clear bit is one past the longer span.
  const DynamicBitset::Word full = ~DynamicBitset::Word{0};
  const DynamicBitset::Word one[] = {full};
  const DynamicBitset::Word two[] = {full, full};
  EXPECT_EQ(DynamicBitset::firstClearInWords(one, two), 128u);
  EXPECT_EQ(DynamicBitset::firstClearInWords(two, one), 128u);
  EXPECT_EQ(DynamicBitset::firstClearInWords({}, {}), 0u);
  EXPECT_EQ(DynamicBitset::firstClearInWords(one, {}), 64u);
}

TEST(DynamicBitsetWords, FirstClearInWordsHonorsPaddingBitsAsUsed) {
  // Spans carry no bit-length, so a caller that sets padding bits sees them
  // as used: size-63 row with all 63 logical bits set plus the tail bit set
  // pushes first-clear into the next word.
  const DynamicBitset::Word all63AndPad = ~DynamicBitset::Word{0};
  const DynamicBitset::Word row[] = {all63AndPad};
  EXPECT_EQ(DynamicBitset::firstClearInWords(row, row), 64u);
}

TEST(DynamicBitset, RandomizedAgainstReferenceSet) {
  Rng rng(55);
  DynamicBitset b;
  std::set<std::size_t> reference;
  for (int step = 0; step < 3000; ++step) {
    const auto bit = static_cast<std::size_t>(rng.below(400));
    if (rng.coin()) {
      b.set(bit);
      reference.insert(bit);
    } else {
      b.reset(bit);
      reference.erase(bit);
    }
  }
  EXPECT_EQ(b.count(), reference.size());
  std::size_t expectedFirstClear = 0;
  while (reference.contains(expectedFirstClear)) ++expectedFirstClear;
  EXPECT_EQ(b.firstClear(), expectedFirstClear);
  const auto bits = b.setBits();
  EXPECT_TRUE(std::equal(bits.begin(), bits.end(), reference.begin(),
                         reference.end()));
}

}  // namespace
}  // namespace dima::support
