/// \file test_trace_parity.cpp
/// Trace-sequence pins: the exact `TraceLog` event stream of a MaDEC and a
/// DiMa2Ed run on a small fixed graph, fingerprinted pre-refactor. The
/// automaton-core refactor must reproduce not just final colors but every
/// intermediate event (cycle, node, kind, detail) in the same order —
/// this is the strongest cheap witness that the shared core walks the
/// Fig. 1 states exactly as the hand-rolled protocols did. Update only
/// alongside a deliberate schedule change.

#include <gtest/gtest.h>

#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"
#include "src/net/trace.hpp"

namespace dima {
namespace {

graph::Graph traceGraph() {
  support::Rng rng(0x7ace);
  return graph::erdosRenyiAvgDegree(12, 3.0, rng);
}

/// FNV-1a over the event tuples; order-sensitive by construction.
std::uint64_t traceFingerprint(const net::TraceLog& log) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const net::TraceEvent& e : log.events()) {
    mix(e.cycle);
    mix(e.node);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.a));
    mix(static_cast<std::uint64_t>(e.b));
  }
  return h;
}

TEST(TraceParity, MadecEventSequenceIsPinned) {
  net::TraceLog log;
  log.enable();
  coloring::MadecOptions options{.seed = 42};
  options.trace = &log;
  const auto result = coloring::colorEdgesMadec(traceGraph(), options);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 11u);

  ASSERT_EQ(log.events().size(), 197u);
  EXPECT_EQ(traceFingerprint(log), 6479313804059149941ULL);

  // Spot anchors so a fingerprint mismatch has a readable first suspect.
  const net::TraceEvent& first = log.events().front();
  EXPECT_EQ(first.cycle, 0u);
  EXPECT_EQ(first.node, 0u);
  EXPECT_EQ(first.kind, net::TraceKind::StateChoice);
  EXPECT_EQ(first.a, 0);
  const net::TraceEvent& last = log.events().back();
  EXPECT_EQ(last.cycle, 10u);
  EXPECT_EQ(last.node, 11u);
  EXPECT_EQ(last.kind, net::TraceKind::NodeDone);
}

TEST(TraceParity, Dima2EdEventSequenceIsPinned) {
  net::TraceLog log;
  log.enable();
  coloring::Dima2EdOptions options{.seed = 42};
  options.trace = &log;
  const graph::Digraph d(traceGraph());
  const auto result = coloring::colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 45u);

  ASSERT_EQ(log.events().size(), 613u);
  EXPECT_EQ(traceFingerprint(log), 9472849560119812593ULL);

  const net::TraceEvent& first = log.events().front();
  EXPECT_EQ(first.cycle, 0u);
  EXPECT_EQ(first.node, 0u);
  EXPECT_EQ(first.kind, net::TraceKind::StateChoice);
  const net::TraceEvent& last = log.events().back();
  EXPECT_EQ(last.cycle, 44u);
  EXPECT_EQ(last.node, 9u);
  EXPECT_EQ(last.kind, net::TraceKind::NodeDone);
}

}  // namespace
}  // namespace dima
