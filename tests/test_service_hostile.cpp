#include "src/service/hostile.hpp"

#include <gtest/gtest.h>

namespace dima::service {
namespace {

/// A scaled-down adversarial campaign (the full one runs under the CLI and
/// the ASan/UBSan CI job). Every corruption mode cycles at least twice;
/// the safety catalog and the post-session verifier must stay clean.
TEST(ServiceHostile, CampaignKeepsTheInvariantCatalogClean) {
  HostileOptions options;
  options.seed = 0x5eedULL;
  options.rounds = 12;
  options.n = 32;
  options.commands = 60;
  options.maxBatch = 8;
  const HostileReport report = runHostileCampaign(options);

  EXPECT_EQ(report.rounds, options.rounds);
  EXPECT_TRUE(report.ok()) << report.firstFailure;
  EXPECT_EQ(report.monitorViolations, 0u);
  EXPECT_EQ(report.verifyFailures, 0u);
  // The clean control rounds (mode Clean cycles every 6th round) must have
  // ended via Shutdown, so at least those count as clean sessions.
  EXPECT_GE(report.cleanSessions, options.rounds / 6);
  EXPECT_GT(report.commandsServed, 0u);
  // Some corruption must actually have bitten: the campaign is vacuous if
  // every mangled stream still parsed end to end.
  EXPECT_GT(report.framingRejections + report.truncatedSessions +
                report.errorReplies,
            0u);
}

TEST(ServiceHostile, CampaignIsDeterministicInItsSeed) {
  HostileOptions options;
  options.rounds = 6;
  options.n = 24;
  options.commands = 40;
  const HostileReport a = runHostileCampaign(options);
  const HostileReport b = runHostileCampaign(options);
  EXPECT_EQ(a.cleanSessions, b.cleanSessions);
  EXPECT_EQ(a.framingRejections, b.framingRejections);
  EXPECT_EQ(a.truncatedSessions, b.truncatedSessions);
  EXPECT_EQ(a.commandsServed, b.commandsServed);
  EXPECT_EQ(a.errorReplies, b.errorReplies);
}

}  // namespace
}  // namespace dima::service
