#include "src/graph/graph.hpp"

#include <gtest/gtest.h>

#include "src/graph/builder.hpp"

namespace dima::graph {
namespace {

Graph triangle() {
  return Graph(3, {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}});
}

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_EQ(g.maxDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 0.0);
}

TEST(Graph, IsolatedVertices) {
  Graph g(5);
  EXPECT_EQ(g.numVertices(), 5u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.incidences(3).empty());
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.maxDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 2.0);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Graph, EndpointsAreCanonicalized) {
  Graph g(3, {Edge{2, 0}});
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 2u);
}

TEST(Graph, EdgeOther) {
  const Edge e{3, 7};
  EXPECT_EQ(e.other(3), 7u);
  EXPECT_EQ(e.other(7), 3u);
}

TEST(Graph, IncidencesAreNeighborSortedAndConsistent) {
  Graph g(5, {Edge{0, 4}, Edge{0, 1}, Edge{0, 3}, Edge{1, 4}});
  const auto inc = g.incidences(0);
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0].neighbor, 1u);
  EXPECT_EQ(inc[1].neighbor, 3u);
  EXPECT_EQ(inc[2].neighbor, 4u);
  for (const Incidence& i : inc) {
    const Edge& e = g.edge(i.edge);
    EXPECT_TRUE(e.u == 0 || e.v == 0);
    EXPECT_EQ(e.other(0), i.neighbor);
  }
}

TEST(Graph, HasEdgeAndFindEdge) {
  const Graph g = triangle();
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  const EdgeId e = g.findEdge(2, 0);
  ASSERT_NE(e, kNoEdge);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 2u);
  Graph h(4, {Edge{0, 1}});
  EXPECT_FALSE(h.hasEdge(2, 3));
  EXPECT_EQ(h.findEdge(0, 2), kNoEdge);
}

TEST(Graph, MaxDegreeOnStar) {
  Graph g(5, {Edge{0, 1}, Edge{0, 2}, Edge{0, 3}, Edge{0, 4}});
  EXPECT_EQ(g.maxDegree(), 4u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphDeathTest, RejectsSelfLoop) {
  EXPECT_DEATH(Graph(3, {Edge{1, 1}}), "self-loop");
}

TEST(GraphDeathTest, RejectsOutOfRangeEndpoint) {
  EXPECT_DEATH(Graph(3, {Edge{0, 5}}), "outside vertex range");
}

TEST(GraphDeathTest, RejectsDuplicateEdge) {
  EXPECT_DEATH(Graph(3, {Edge{0, 1}, Edge{1, 0}}), "duplicate edge");
}

TEST(GraphBuilder, DeduplicatesAndCanonicalizes) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.addEdge(0, 1));
  EXPECT_FALSE(b.addEdge(1, 0));  // duplicate in reverse order
  EXPECT_FALSE(b.addEdge(2, 2));  // self-loop rejected quietly
  EXPECT_TRUE(b.hasEdge(0, 1));
  EXPECT_FALSE(b.hasEdge(0, 2));
  const Graph g = b.build();
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(g.numVertices(), 3u);
}

TEST(GraphBuilder, GrowsVertexRangeOnDemand) {
  GraphBuilder b;
  b.addEdge(2, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.numVertices(), 10u);
}

TEST(GraphBuilder, BuildResetsBuilder) {
  GraphBuilder b(2);
  b.addEdge(0, 1);
  (void)b.build();
  EXPECT_EQ(b.numEdges(), 0u);
  EXPECT_EQ(b.numVertices(), 0u);
}

TEST(Graph, EqualityByStructure) {
  EXPECT_TRUE(triangle() == triangle());
  Graph other(3, {Edge{0, 1}, Edge{1, 2}});
  EXPECT_FALSE(triangle() == other);
}

}  // namespace
}  // namespace dima::graph
