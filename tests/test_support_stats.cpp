#include "src/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dima::support {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesPooledStream) {
  OnlineStats a, b, pooled;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    a.add(x);
    pooled.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::cos(i) * 3 + 1;
    b.add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats empty, filled;
  filled.add(1.0);
  filled.add(3.0);
  OnlineStats target = filled;
  target.merge(empty);
  EXPECT_EQ(target.count(), 2u);
  OnlineStats target2 = empty;
  target2.merge(filled);
  EXPECT_EQ(target2.count(), 2u);
  EXPECT_DOUBLE_EQ(target2.mean(), 2.0);
}

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(0);
  h.add(0);
  h.add(1);
  h.add(-3, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.countOf(0), 2u);
  EXPECT_EQ(h.countOf(1), 1u);
  EXPECT_EQ(h.countOf(-3), 2u);
  EXPECT_EQ(h.countOf(99), 0u);
  EXPECT_EQ(h.minKey(), -3);
  EXPECT_EQ(h.maxKey(), 1);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_EQ(h.toString(), "-3:2 0:2 1:1");
}

TEST(IntHistogram, EmptyFractionIsZero) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenSamples) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  LinearFit fit;
  for (int i = 0; i < 20; ++i) {
    fit.add(i, 2.5 * i - 4.0);
  }
  EXPECT_NEAR(fit.slope(), 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept(), -4.0, 1e-9);
  EXPECT_NEAR(fit.r2(), 1.0, 1e-9);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  LinearFit fit;
  for (int i = 0; i < 100; ++i) {
    const double noise = ((i * 37) % 11 - 5) * 0.1;
    fit.add(i, 3.0 * i + noise);
  }
  EXPECT_NEAR(fit.slope(), 3.0, 0.01);
  EXPECT_GT(fit.r2(), 0.999);
}

TEST(LinearFit, DegenerateInputsAreSafe) {
  LinearFit fit;
  EXPECT_EQ(fit.slope(), 0.0);
  EXPECT_EQ(fit.r2(), 0.0);
  fit.add(1.0, 2.0);
  EXPECT_EQ(fit.slope(), 0.0);  // one point: undefined → 0
  fit.add(1.0, 5.0);            // zero x-variance
  EXPECT_EQ(fit.slope(), 0.0);
  EXPECT_EQ(fit.r2(), 0.0);
}

TEST(LinearFit, UncorrelatedDataHasLowR2) {
  LinearFit fit;
  const double ys[] = {1, -1, 1, -1, 1, -1, 1, -1};
  for (int i = 0; i < 8; ++i) fit.add(i, ys[i]);
  EXPECT_LT(fit.r2(), 0.2);
}

}  // namespace
}  // namespace dima::support
