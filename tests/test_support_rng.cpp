#include "src/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace dima::support {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, IsAFunctionOfBothArguments) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
}

TEST(Xoshiro256, ReproducibleStream) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256, JumpChangesState) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenSinglePoint) {
  Rng rng(3);
  EXPECT_EQ(rng.between(42, 42), 42);
}

TEST(Rng, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads, kDraws / 2, kDraws * 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  constexpr int kDraws = 100'000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 0.3 * kDraws, kDraws * 0.02);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(31);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Rng, PickReturnsContainedElement) {
  Rng rng(37);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(SeedSequence, StreamsAreIndependentAndReproducible) {
  SeedSequence seq(1234);
  Rng a1 = seq.stream(0);
  Rng a2 = seq.stream(0);
  Rng b = seq.stream(1);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a1();
    ASSERT_EQ(va, a2());
    if (va != b()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(SeedSequence, DifferentMastersGiveDifferentStreams) {
  SeedSequence s1(1), s2(2);
  Rng a = s1.stream(0), b = s2.stream(0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SeedSequence, StreamsFactoryMatchesIndividualStreams) {
  SeedSequence seq(77);
  auto streams = seq.streams(4);
  ASSERT_EQ(streams.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    Rng individual = seq.stream(k);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(streams[k](), individual());
  }
}

}  // namespace
}  // namespace dima::support
