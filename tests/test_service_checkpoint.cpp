#include "src/service/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/dynamic/incremental.hpp"
#include "src/service/driver.hpp"
#include "src/service/service.hpp"
#include "src/service/session.hpp"

namespace dima::service {
namespace {

std::string asStream(const std::vector<std::uint8_t>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

/// Temp path unique to the test (ctest runs suites in parallel).
std::string tempPath(const char* stem) {
  return testing::TempDir() + stem;
}

TEST(ServiceCheckpoint, EncodeDecodeIsAnIdentity) {
  Checkpoint cp;
  cp.seed = 0x1122334455667788ULL;
  cp.repairs = 42;
  cp.epoch = 17;
  cp.n = 9;
  cp.slots = {{0, 1}, {}, {2, 3}};  // slot 1 is dead
  cp.freeIds = {1};
  cp.colors = {5, -1, 0};

  const std::vector<std::uint8_t> bytes = encodeCheckpoint(cp);
  Checkpoint back;
  std::string error;
  ASSERT_TRUE(decodeCheckpoint(bytes.data(), bytes.size(), &back, &error))
      << error;
  EXPECT_EQ(back, cp);
}

TEST(ServiceCheckpoint, CorruptAndTruncatedFilesAreRejected) {
  Checkpoint cp;
  cp.n = 4;
  cp.slots = {{0, 1}};
  cp.colors = {2};
  const std::vector<std::uint8_t> bytes = encodeCheckpoint(cp);

  Checkpoint back;
  std::string error;
  // Every truncation fails (magic, digest, or field reads).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decodeCheckpoint(bytes.data(), cut, &back, &error)) << cut;
  }
  // Any single flipped byte breaks the digest (or the magic).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> mangled = bytes;
    mangled[i] ^= 0x40;
    EXPECT_FALSE(
        decodeCheckpoint(mangled.data(), mangled.size(), &back, &error))
        << i;
  }
  // Trailing bytes after a valid digest position are also rejected.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decodeCheckpoint(padded.data(), padded.size(), &back, &error));
}

/// Encodes the (possibly invalid) checkpoint and expects the decoder to
/// reject it. encodeCheckpoint stamps a valid digest, so these are exactly
/// the forged-but-self-consistent bytes a hostile replication peer can
/// send (the FNV digest is an integrity check, not a MAC): each must fail
/// *softly*, never reach the aborting DIMA_REQUIREs in fromSlots, and
/// never drive an attacker-sized allocation.
void expectForgedRejected(const Checkpoint& forged, const char* why) {
  const std::vector<std::uint8_t> bytes = encodeCheckpoint(forged);
  Checkpoint back;
  std::string error;
  EXPECT_FALSE(decodeCheckpoint(bytes.data(), bytes.size(), &back, &error))
      << why;
  EXPECT_FALSE(error.empty()) << why;
}

TEST(ServiceCheckpoint, ForgedStructureIsRejectedNotAborted) {
  Checkpoint base;
  base.n = 4;
  base.slots = {{0, 1}, {}, {2, 3}};
  base.freeIds = {1};
  base.colors = {2, -1, 0};

  {
    Checkpoint forged = base;  // allocation bomb: n beyond the Hello cap
    forged.n = std::uint64_t{kMaxServiceVertices} + 1;
    expectForgedRejected(forged, "oversized n");
  }
  {
    Checkpoint forged = base;
    forged.slots[0] = {2, 2};  // self-loop: fromSlots would abort
    expectForgedRejected(forged, "u == v");
  }
  {
    Checkpoint forged = base;
    forged.slots[0] = {3, 1};  // unnormalized: fromSlots requires u < v
    expectForgedRejected(forged, "u > v");
  }
  {
    Checkpoint forged = base;
    forged.slots[0] = {1, 9};  // endpoint beyond n
    expectForgedRejected(forged, "v >= n");
  }
  {
    Checkpoint forged = base;
    forged.slots[2] = {0, 1};  // duplicate live edge
    expectForgedRejected(forged, "duplicate edge");
  }
  {
    Checkpoint forged = base;
    forged.freeIds = {};  // free-id stack does not cover the dead slots
    expectForgedRejected(forged, "missing free id");
  }
  {
    Checkpoint forged = base;
    forged.freeIds = {0};  // free id pointing at a live slot
    expectForgedRejected(forged, "free id -> live slot");
  }
  {
    Checkpoint forged = base;
    forged.slots[2] = {};  // two dead slots...
    forged.colors[2] = -1;
    forged.freeIds = {1, 1};  // ...but the same id listed twice
    expectForgedRejected(forged, "duplicate free id");
  }
  {
    Checkpoint forged = base;  // bitset bomb: color far past the palette
    forged.colors[0] = 1 << 30;
    expectForgedRejected(forged, "color out of range");
  }
  {
    Checkpoint forged = base;
    forged.colors[0] = -2;  // negative and not the kNoColor sentinel
    expectForgedRejected(forged, "negative color");
  }
  {
    Checkpoint forged = base;
    forged.colors[1] = 3;  // dead slot must carry kNoColor
    expectForgedRejected(forged, "colored dead slot");
  }

  // And the unforged base still round-trips.
  const std::vector<std::uint8_t> bytes = encodeCheckpoint(base);
  Checkpoint back;
  std::string error;
  ASSERT_TRUE(decodeCheckpoint(bytes.data(), bytes.size(), &back, &error))
      << error;
  EXPECT_EQ(back, base);
}

TEST(ServiceCheckpoint, SaveLoadRoundTripsThroughTheFileSystem) {
  Checkpoint cp;
  cp.seed = 7;
  cp.n = 3;
  cp.slots = {{0, 2}};
  cp.colors = {1};
  const std::string path = tempPath("dima_ckpt_roundtrip.bin");

  std::string error;
  std::uint64_t bytes = 0;
  std::uint64_t digest = 0;
  ASSERT_TRUE(saveCheckpoint(cp, path, &error, &bytes, &digest)) << error;
  EXPECT_GT(bytes, 0u);

  Checkpoint back;
  ASSERT_TRUE(loadCheckpoint(path, &back, &error)) << error;
  EXPECT_EQ(back, cp);
  std::remove(path.c_str());

  EXPECT_FALSE(loadCheckpoint(tempPath("dima_ckpt_missing.bin"), &back,
                              &error));
}

/// The headline guarantee: an uninterrupted run and a snapshot → kill →
/// restore → resume run end in bit-identical colorings. Repair randomness
/// is keyed by (seed, repairIndex) and edge ids by the restored free-id
/// stack, so the two schedules are indistinguishable to the automaton.
TEST(ServiceCheckpoint, RestoredRunColorsBitIdenticallyToTheFullRun) {
  StreamSpec spec;
  spec.seed = 0xc0ffeeULL;
  spec.n = 64;
  spec.commands = 400;
  const std::string ckpt = tempPath("dima_ckpt_resume.bin");
  const StreamBundle streams = buildStreams(spec, ckpt);

  // Uninterrupted run.
  ColoringService fullSvc;
  std::stringstream fullIn(asStream(streams.full));
  std::stringstream fullOut;
  const SessionResult fullSession = runSession(fullSvc, fullIn, fullOut);
  ASSERT_TRUE(fullSession.clean() && fullSession.shutdown);

  // Head run: ends in Snapshot + Shutdown; the service object dies here,
  // simulating the kill.
  std::uint64_t headDigest = 0;
  {
    ColoringService headSvc;
    std::stringstream headIn(asStream(streams.head));
    std::stringstream headOut;
    const SessionResult headSession = runSession(headSvc, headIn, headOut);
    ASSERT_TRUE(headSession.clean() && headSession.shutdown);
    headDigest = headSvc.colorDigest();
  }

  // Restore from the checkpoint file and resume with the tail stream.
  Checkpoint cp;
  std::string error;
  ASSERT_TRUE(loadCheckpoint(ckpt, &cp, &error)) << error;
  ColoringService restored(cp);
  EXPECT_EQ(restored.colorDigest(), headDigest)
      << "restore must reproduce the checkpointed coloring exactly";

  std::stringstream tailIn(asStream(streams.tail));
  std::stringstream tailOut;
  const SessionResult tailSession = runSession(restored, tailIn, tailOut);
  ASSERT_TRUE(tailSession.clean() && tailSession.shutdown);

  // Bit-identical: same digest, same table, same live topology.
  EXPECT_EQ(restored.colorDigest(), fullSvc.colorDigest());
  EXPECT_EQ(restored.colorTable(), fullSvc.colorTable());
  EXPECT_EQ(restored.graph().numEdges(), fullSvc.graph().numEdges());

  // And the result is a valid coloring, not just a matching one.
  const auto verdict =
      dynamic::verifyDynamicColoring(restored.graph(), restored.colors());
  EXPECT_TRUE(verdict.valid) << verdict.reason;
  std::remove(ckpt.c_str());
}

TEST(ServiceCheckpoint, RestoredHelloPinsTheVertexCount) {
  // Build a small colored service and checkpoint it directly.
  ColoringService svc;
  CommandFrame h = makeFrame<ServiceKind::Hello, CommandFrame>();
  h.a = kServiceWireVersion;
  h.b = 10;
  ASSERT_EQ(svc.handle(h).kind, ServiceKind::HelloOk);
  CommandFrame ins = makeFrame<ServiceKind::InsertEdge, CommandFrame>();
  ins.a = 1;
  ins.b = 2;
  svc.handle(ins);
  svc.handle(makeFrame<ServiceKind::Flush, CommandFrame>());
  const Checkpoint cp = svc.checkpoint();

  ColoringService restored(cp);
  CommandFrame wrongN = h;
  wrongN.b = 11;
  ReplyFrame r = restored.handle(wrongN);
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadState));

  CommandFrame attach = h;
  attach.b = 0;  // "whatever you have"
  r = restored.handle(attach);
  ASSERT_EQ(r.kind, ServiceKind::HelloOk);
  EXPECT_EQ(r.b, 10u);
}

}  // namespace
}  // namespace dima::service
