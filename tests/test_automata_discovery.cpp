#include "src/automata/discovery.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/support/stats.hpp"

namespace dima::automata {
namespace {

TEST(DiscoverMatching, OneRoundYieldsAValidMatching) {
  support::Rng rng(1);
  const graph::Graph g = graph::erdosRenyiAvgDegree(100, 8.0, rng);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Matching m = discoverMatching(g, seed);
    EXPECT_TRUE(isMatching(g, m)) << "seed " << seed;
  }
}

TEST(DiscoverMatching, FindsPairsOnDenseGraphs) {
  const graph::Graph g = graph::complete(20);
  std::size_t totalPairs = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    totalPairs += discoverMatching(g, seed).size();
  }
  // Prop. 1: each of the 20 nodes pairs w.p. ≥ ~1/4 per round, so ~25 pairs
  // over 10 rounds in expectation; 5 is a very safe floor.
  EXPECT_GE(totalPairs, 5u);
}

TEST(MaximalMatching, IsMaximalOnManyFamilies) {
  support::Rng rng(2);
  const graph::Graph graphs[] = {
      graph::complete(15),
      graph::cycle(17),
      graph::path(12),
      graph::star(9),
      graph::erdosRenyiAvgDegree(80, 6.0, rng),
      graph::wattsStrogatz(60, 6, 0.2, rng),
  };
  for (const graph::Graph& g : graphs) {
    const MaximalMatchingResult result = maximalMatching(g, 99);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(isMaximalMatching(g, result.matching))
        << "n=" << g.numVertices() << " m=" << g.numEdges();
  }
}

TEST(MaximalMatching, EmptyAndIsolatedGraphs) {
  const MaximalMatchingResult r1 = maximalMatching(graph::Graph(0), 1);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r1.matching.empty());
  const MaximalMatchingResult r2 = maximalMatching(graph::Graph(5), 1);
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r2.rounds, 0u);
}

TEST(MaximalMatching, SingleEdgeEventuallyMatches) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  const MaximalMatchingResult result = maximalMatching(g, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.matching.size(), 1u);
}

TEST(MaximalMatching, ParticipationRateNearPropositionOne) {
  // Proposition 1 argues an active node pairs with probability ≥ ~1/4 per
  // round (between 1/4 and 1/2). Measure the empirical rate on a regular
  // graph where the argument's assumptions are cleanest.
  support::Rng rng(3);
  const graph::Graph g = graph::randomRegular(100, 6, rng);
  DiscoveryStats pooled;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const MaximalMatchingResult result = maximalMatching(g, seed);
    pooled.activeNodeRounds += result.stats.activeNodeRounds;
    pooled.matchedNodeRounds += result.stats.matchedNodeRounds;
  }
  const double rate = pooled.participationRate();
  EXPECT_GT(rate, 0.15) << "participation collapsed";
  EXPECT_LT(rate, 0.60) << "participation implausibly high";
}

TEST(MaximalMatching, PairsPerRoundAreRecorded) {
  const graph::Graph g = graph::complete(12);
  const MaximalMatchingResult result = maximalMatching(g, 7);
  EXPECT_EQ(result.stats.pairsPerRound.size(), result.rounds);
  std::size_t total = 0;
  for (std::size_t pairs : result.stats.pairsPerRound) total += pairs;
  EXPECT_EQ(total, result.matching.size());
}

TEST(MaximalMatching, RoundsScaleGentlyNotWithN) {
  // The expected number of rounds to maximality is polylogarithmic; what
  // matters here is that quadrupling n does not quadruple the rounds.
  support::Rng rng(4);
  const graph::Graph small = graph::erdosRenyiAvgDegree(100, 6.0, rng);
  const graph::Graph large = graph::erdosRenyiAvgDegree(400, 6.0, rng);
  support::OnlineStats smallRounds, largeRounds;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    smallRounds.add(static_cast<double>(maximalMatching(small, seed).rounds));
    largeRounds.add(static_cast<double>(maximalMatching(large, seed).rounds));
  }
  EXPECT_LT(largeRounds.mean(), smallRounds.mean() * 3.0);
}

TEST(MatchingDiscovery, InvitorBiasValidated) {
  const graph::Graph g = graph::cycle(4);
  EXPECT_DEATH(MatchingDiscovery(g, 1, true, 0.0), "bias");
  EXPECT_DEATH(MatchingDiscovery(g, 1, true, 1.0), "bias");
}

class MaximalMatchingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(MaximalMatchingSweep, AlwaysMaximalAndSymmetric) {
  const auto [n, degree, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, degree, rng);
  const MaximalMatchingResult result =
      maximalMatching(g, static_cast<std::uint64_t>(seed));
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(isMaximalMatching(g, result.matching));
}

INSTANTIATE_TEST_SUITE_P(
    Families, MaximalMatchingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(20, 60, 150),
                       ::testing::Values(3.0, 8.0),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace dima::automata
