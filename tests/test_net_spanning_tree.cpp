#include "src/net/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::net {
namespace {

void expectBfsTree(const graph::Graph& g, const SpanningTree& tree) {
  const auto dist = graph::bfsDistances(g, tree.root);
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    EXPECT_EQ(tree.depth[v], dist[v]) << "vertex " << v;
    if (v == tree.root) {
      EXPECT_EQ(tree.parent[v], graph::kNoVertex);
    } else {
      ASSERT_NE(tree.parent[v], graph::kNoVertex);
      EXPECT_TRUE(g.hasEdge(v, tree.parent[v]));
      EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
    }
  }
}

TEST(SpanningTreeFlood, PathGraph) {
  const graph::Graph g = graph::path(6);
  const SpanningTree tree = buildSpanningTreeFlood(g, 0);
  expectBfsTree(g, tree);
  EXPECT_EQ(tree.height(), 5u);
  // The wavefront needs one round per depth level plus the root's own.
  EXPECT_EQ(tree.buildRounds, 6u);
}

TEST(SpanningTreeFlood, RandomConnectedGraphs) {
  support::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    graph::Graph g = graph::erdosRenyiAvgDegree(80, 6.0, rng);
    if (!graph::isConnected(g)) {
      g = graph::wattsStrogatz(80, 6, 0.2, rng);  // always connected
    }
    const SpanningTree tree = buildSpanningTreeFlood(g, 3);
    expectBfsTree(g, tree);
  }
}

TEST(SpanningTreeFlood, SingleVertex) {
  const SpanningTree tree = buildSpanningTreeFlood(graph::Graph(1), 0);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.parent[0], graph::kNoVertex);
}

TEST(SpanningTreeFloodDeathTest, RejectsDisconnectedGraphs) {
  EXPECT_DEATH(buildSpanningTreeFlood(graph::Graph(3), 0), "connected");
}

TEST(DetectionRound, SingleNode) {
  const SpanningTree tree = buildSpanningTreeFlood(graph::Graph(1), 0);
  EXPECT_EQ(detectionRound(tree, {7}), 7u);
}

TEST(DetectionRound, PathWorstCase) {
  // Path rooted at one end: if the far leaf finishes last at round R, the
  // root learns at R + (n-1) hops.
  const graph::Graph g = graph::path(5);
  const SpanningTree tree = buildSpanningTreeFlood(g, 0);
  std::vector<std::uint64_t> completion{0, 0, 0, 0, 10};
  EXPECT_EQ(detectionRound(tree, completion), 14u);
}

TEST(DetectionRound, EarlyLeafHidesBehindLateInner) {
  const graph::Graph g = graph::path(4);  // 0-1-2-3, root 0
  const SpanningTree tree = buildSpanningTreeFlood(g, 0);
  // Leaf finishes first; node 1 finishes late: root learns one hop after 1.
  std::vector<std::uint64_t> completion{0, 20, 0, 0};
  EXPECT_EQ(detectionRound(tree, completion), 21u);
}

TEST(DetectionRound, StarIsShallow) {
  const graph::Graph g = graph::star(10);
  const SpanningTree tree = buildSpanningTreeFlood(g, 0);
  std::vector<std::uint64_t> completion(10, 5);
  // Every leaf reports at round 6; the hub/root is done itself at 5.
  EXPECT_EQ(detectionRound(tree, completion), 6u);
}

TEST(DetectionRound, BoundedByCompletionPlusHeight) {
  support::Rng rng(2);
  const graph::Graph g = graph::wattsStrogatz(60, 6, 0.3, rng);
  const SpanningTree tree = buildSpanningTreeFlood(g, 0);
  std::vector<std::uint64_t> completion(60);
  for (std::size_t i = 0; i < 60; ++i) completion[i] = (i * 13) % 29;
  const std::uint64_t detect = detectionRound(tree, completion);
  std::uint64_t maxDone = 0;
  for (auto c : completion) maxDone = std::max(maxDone, c);
  EXPECT_GE(detect, maxDone);
  EXPECT_LE(detect, maxDone + tree.height());
}

TEST(DetectionRoundDeathTest, SizeMismatch) {
  const SpanningTree tree = buildSpanningTreeFlood(graph::path(3), 0);
  EXPECT_DEATH(detectionRound(tree, {1, 2}), "size mismatch");
}

}  // namespace
}  // namespace dima::net
