#include "src/baselines/tree_protocol.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/builder.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::baselines {
namespace {

void expectGoodTreeColoring(const graph::Graph& g,
                            const TreeProtocolResult& result) {
  ASSERT_TRUE(result.coloring.metrics.converged);
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.coloring.colors);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
  if (g.numEdges() > 0) {
    EXPECT_LE(result.coloring.colorsUsed(), g.maxDegree() + 1);
  }
}

TEST(TreeProtocol, PathAndStar) {
  {
    const graph::Graph g = graph::path(10);
    const TreeProtocolResult result = distributedTreeColoring(g);
    expectGoodTreeColoring(g, result);
    EXPECT_EQ(result.coloring.colorsUsed(), 2u);
  }
  {
    const graph::Graph g = graph::star(9);
    const TreeProtocolResult result = distributedTreeColoring(g);
    expectGoodTreeColoring(g, result);
    EXPECT_EQ(result.coloring.colorsUsed(), 8u);
    // The hub assigns one edge per round: Δ rounds + termination slack.
    EXPECT_LE(result.coloringRounds, 10u);
  }
}

TEST(TreeProtocol, RandomTreesAcrossSizes) {
  support::Rng rng(1);
  for (std::size_t n : {2u, 17u, 60u, 200u}) {
    const graph::Graph g = graph::randomTree(n, rng);
    const TreeProtocolResult result = distributedTreeColoring(g);
    expectGoodTreeColoring(g, result);
  }
}

TEST(TreeProtocol, SingleVertex) {
  const TreeProtocolResult result = distributedTreeColoring(graph::Graph(1));
  EXPECT_TRUE(result.coloring.metrics.converged);
}

TEST(TreeProtocol, DeterministicAcrossRuns) {
  support::Rng rng(2);
  const graph::Graph g = graph::randomTree(50, rng);
  const TreeProtocolResult a = distributedTreeColoring(g);
  const TreeProtocolResult b = distributedTreeColoring(g);
  EXPECT_EQ(a.coloring.colors, b.coloring.colors);
  EXPECT_EQ(a.coloringRounds, b.coloringRounds);
}

TEST(TreeProtocol, PipelinedRoundsStayNearDepthPlusDelta) {
  // A broom: a long path with a bushy end — depth and Δ must add, not
  // multiply.
  graph::GraphBuilder b(0);
  constexpr graph::VertexId kPathLen = 30;
  for (graph::VertexId v = 0; v + 1 < kPathLen; ++v) b.addEdge(v, v + 1);
  for (graph::VertexId leaf = 0; leaf < 20; ++leaf) {
    b.addEdge(kPathLen - 1, kPathLen + leaf);
  }
  const graph::Graph g = b.build();
  const TreeProtocolResult result = distributedTreeColoring(g, 0);
  expectGoodTreeColoring(g, result);
  const std::size_t depth = graph::diameter(g);
  EXPECT_LE(result.coloringRounds, depth + g.maxDegree() + 4);
}

TEST(TreeProtocol, RootChoiceDoesNotBreakCorrectness) {
  support::Rng rng(3);
  const graph::Graph g = graph::randomTree(40, rng);
  for (graph::VertexId root : {0u, 7u, 39u}) {
    const TreeProtocolResult result = distributedTreeColoring(g, root);
    expectGoodTreeColoring(g, result);
  }
}

TEST(TreeProtocolDeathTest, RejectsNonTrees) {
  EXPECT_DEATH(distributedTreeColoring(graph::cycle(4)), "tree");
  EXPECT_DEATH(distributedTreeColoring(graph::Graph(3)), "tree");  // forest
}

}  // namespace
}  // namespace dima::baselines
