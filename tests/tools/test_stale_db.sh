#!/usr/bin/env bash
# Pins dimacheck's stale-compile-db detection (the gate that keeps a newly
# added TU from being silently unanalyzed): a db covering every on-disk TU
# is accepted; after a TU appears that the db does not know, both
# --check-db and the analyzing run must fail with exit 2 and point at
# regeneration; the --cache digest must also notice the new TU.
#
#   test_stale_db.sh <path-to-dimacheck>

set -u

DIMACHECK="${1:?usage: test_stale_db.sh <path-to-dimacheck>}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

mkdir -p "${SCRATCH}/src"
cat > "${SCRATCH}/src/a.cpp" <<'EOF'
namespace t { int alpha() { return 1; } }
EOF
cat > "${SCRATCH}/src/b.cpp" <<'EOF'
namespace t { int beta() { return 2; } }
EOF

DB="${SCRATCH}/compile_commands.json"
cat > "${DB}" <<EOF
[
  {"directory": "${SCRATCH}", "command": "c++ -c src/a.cpp",
   "file": "${SCRATCH}/src/a.cpp"},
  {"directory": "${SCRATCH}", "command": "c++ -c src/b.cpp",
   "file": "${SCRATCH}/src/b.cpp"}
]
EOF

# 1. Fresh db: accepted by the freshness-only mode and by the real run.
"${DIMACHECK}" --root "${SCRATCH}" --check-db "${DB}" \
  || fail "fresh db rejected by --check-db"
"${DIMACHECK}" --root "${SCRATCH}" --compile-db "${DB}" \
  --cache "${SCRATCH}/dbcache" \
  || fail "fresh db rejected by the analyzing run"
[ -f "${SCRATCH}/dbcache" ] || fail "cache file not written on a fresh run"

# 2. Cache hit: same db, same tree — the second run must report the hit.
"${DIMACHECK}" --root "${SCRATCH}" --compile-db "${DB}" \
  --cache "${SCRATCH}/dbcache" | grep -q "cache hit" \
  || fail "second run with unchanged db/tree did not hit the cache"

# 3. A TU the db has never heard of makes it stale.
cat > "${SCRATCH}/src/c.cpp" <<'EOF'
namespace t { int gamma() { return 3; } }
EOF

out="$("${DIMACHECK}" --root "${SCRATCH}" --check-db "${DB}" 2>&1)"
rc=$?
[ "${rc}" -eq 2 ] || fail "--check-db exit ${rc} for a stale db, want 2"
echo "${out}" | grep -q "regenerate" \
  || fail "stale-db message carries no regenerate hint: ${out}"
echo "${out}" | grep -q "src/c.cpp" \
  || fail "stale-db message does not name the missing TU: ${out}"

# 4. The cache keys on the TU list too, so the new TU bypasses the cached
# freshness verdict and the analyzing run fails the same way.
out="$("${DIMACHECK}" --root "${SCRATCH}" --compile-db "${DB}" \
  --cache "${SCRATCH}/dbcache" 2>&1)"
rc=$?
[ "${rc}" -eq 2 ] || fail "analyzing run exit ${rc} for a stale db, want 2"
echo "${out}" | grep -q "regenerate" \
  || fail "analyzing-run stale message carries no regenerate hint: ${out}"

echo "stale-db detection behaves as pinned"
