#include <gtest/gtest.h>

#include <cmath>

#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/strong_madec.hpp"
#include "src/graph/generators.hpp"
#include "src/net/message.hpp"
#include "src/net/network.hpp"

namespace dima::net {
namespace {

TEST(BitWidth, KnownValues) {
  EXPECT_EQ(bitWidth(0), 1u);
  EXPECT_EQ(bitWidth(1), 1u);
  EXPECT_EQ(bitWidth(2), 2u);
  EXPECT_EQ(bitWidth(3), 2u);
  EXPECT_EQ(bitWidth(4), 3u);
  EXPECT_EQ(bitWidth(255), 8u);
  EXPECT_EQ(bitWidth(256), 9u);
  EXPECT_EQ(bitWidth(~std::uint64_t{0}), 64u);
}

TEST(Congest, NetworkAccumulatesBits) {
  struct Sized {
    std::uint64_t payload = 0;
    std::uint64_t wireBits() const { return 10; }
  };
  const graph::Graph g = graph::complete(4);
  SyncNetwork<Sized> net(g);
  net.broadcast(0, Sized{});
  net.deliverRound();
  EXPECT_EQ(net.counters().bitsDelivered, 30u);  // 3 neighbors × 10 bits
  EXPECT_EQ(net.counters().maxMessageBits, 10u);
  EXPECT_NE(net.counters().toString().find("bits=30"), std::string::npos);
}

TEST(Congest, TypesWithoutWireBitsStillWork) {
  struct Plain {
    int x = 0;
  };
  const graph::Graph g = graph::complete(3);
  SyncNetwork<Plain> net(g);
  net.broadcast(0, Plain{});
  net.deliverRound();
  EXPECT_EQ(net.counters().bitsDelivered, 0u);
  EXPECT_EQ(net.counters().messagesDelivered, 2u);
}

/// The paper's "one hop information" premise means the algorithms live in
/// the CONGEST model: every message is O(log n) bits. Growing n by 8×
/// must add only a constant handful of bits to the largest message.
TEST(Congest, MadecLargestMessageGrowsLogarithmically) {
  std::uint64_t maxBits[2] = {0, 0};
  const std::size_t sizes[2] = {100, 800};
  for (int i = 0; i < 2; ++i) {
    support::Rng rng(7);
    const graph::Graph g = graph::erdosRenyiAvgDegree(sizes[i], 8.0, rng);
    coloring::MadecOptions options;
    options.seed = 3;
    const auto result = coloring::colorEdgesMadec(g, options);
    ASSERT_TRUE(result.metrics.converged);
    ASSERT_GT(result.metrics.bitsDelivered, 0u);
    maxBits[i] = result.metrics.maxMessageBits;
    // Sanity: a MaDEC message is a kind + node id + color.
    EXPECT_LE(result.metrics.maxMessageBits,
              2 + bitWidth(sizes[i]) + bitWidth(2 * g.maxDegree()));
  }
  EXPECT_LE(maxBits[1], maxBits[0] + 8);
}

TEST(Congest, StrongColoringMessagesAreAlsoSmall) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 4.0, rng);
  const auto dima2ed =
      coloring::colorArcsDima2Ed(graph::Digraph(g), {.seed = 2});
  ASSERT_TRUE(dima2ed.metrics.converged);
  EXPECT_GT(dima2ed.metrics.bitsDelivered, 0u);
  // kind + node id + color + arc id, all logarithmic in the run size.
  EXPECT_LE(dima2ed.metrics.maxMessageBits, 3 + 7 + 8 + 8);

  const auto strong = coloring::colorEdgesStrongMadec(g, {.seed = 2});
  ASSERT_TRUE(strong.metrics.converged);
  EXPECT_GT(strong.metrics.bitsDelivered, 0u);
  EXPECT_LE(strong.metrics.maxMessageBits, 3 + 7 + 8 + 8);
}

TEST(Congest, BitsScaleWithMessagesDelivered) {
  support::Rng rng(6);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 6.0, rng);
  const auto result = coloring::colorEdgesMadec(g, {.seed = 4});
  ASSERT_TRUE(result.metrics.converged);
  // Average message is at least the 2-bit kind plus something.
  EXPECT_GE(result.metrics.bitsDelivered,
            3 * result.metrics.messagesDelivered);
  EXPECT_LE(result.metrics.bitsDelivered,
            result.metrics.maxMessageBits * result.metrics.messagesDelivered);
}

}  // namespace
}  // namespace dima::net
