// The soak tier (`ctest -L soak`): a sustained multi-session campaign —
// clean clients streaming seed-derived workloads over concurrent TCP
// sessions while hostile clients replay corrupted streams into the same
// service, invariant monitor on. CI scales the budget through the
// environment (the ASan/UBSan job runs ~10⁶ commands; see
// .github/workflows); the defaults here keep a local `ctest -L soak`
// under a minute.

#include "src/service/driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dima::service {
namespace {

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

TEST(ServiceSoak, SustainedMultiSessionCampaign) {
  SoakSpec spec;
  spec.commands = envSize("DIMA_SOAK_COMMANDS", spec.commands);
  spec.cleanSessions = envSize("DIMA_SOAK_CLEAN_SESSIONS", spec.cleanSessions);
  spec.hostileSessions =
      envSize("DIMA_SOAK_HOSTILE_SESSIONS", spec.hostileSessions);
  spec.hostileRounds = envSize("DIMA_SOAK_HOSTILE_ROUNDS", spec.hostileRounds);
  spec.n = static_cast<std::uint32_t>(envSize("DIMA_SOAK_N", spec.n));

  const SoakReport report = runSoakCampaign(spec);
  std::printf(
      "soak: %zu sessions, %llu commands admitted, %llu replies, "
      "%llu framing errors, %.2fs (%.0f cmds/s), repair p50 %lluus "
      "p99 %lluus\n",
      report.sessions,
      static_cast<unsigned long long>(report.commandsAdmitted),
      static_cast<unsigned long long>(report.repliesWritten),
      static_cast<unsigned long long>(report.framingErrors), report.seconds,
      report.commandsPerSec,
      static_cast<unsigned long long>(report.p50RepairMicros),
      static_cast<unsigned long long>(report.p99RepairMicros));

  EXPECT_TRUE(report.ok()) << report.firstFailure;
  EXPECT_EQ(report.monitorViolations, 0u);
  EXPECT_TRUE(report.verifyOk) << report.firstFailure;
  EXPECT_GE(report.sessions, spec.cleanSessions + spec.hostileSessions);
  EXPECT_GT(report.commandsAdmitted,
            static_cast<std::uint64_t>(spec.commands));
  // A full mode cycle of hostile rounds must hit the frame layer.
  EXPECT_GT(report.framingErrors, 0u);
}

}  // namespace
}  // namespace dima::service
