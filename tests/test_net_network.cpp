#include "src/net/network.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"

namespace dima::net {
namespace {

struct Ping {
  int value = 0;
};

graph::Graph triangle() {
  return graph::Graph(3, {graph::Edge{0, 1}, graph::Edge{1, 2},
                          graph::Edge{0, 2}});
}

TEST(SyncNetwork, BroadcastReachesAllNeighborsOnly) {
  const graph::Graph g = graph::star(4);  // hub 0, leaves 1..3
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{7});
  net.deliverRound();
  for (NodeId leaf = 1; leaf < 4; ++leaf) {
    ASSERT_EQ(net.inbox(leaf).size(), 1u);
    EXPECT_EQ(net.inbox(leaf).front().from, 0u);
    EXPECT_EQ(net.inbox(leaf).front().msg.value, 7);
  }
  EXPECT_TRUE(net.inbox(0).empty());  // no self-delivery
}

TEST(SyncNetwork, UnicastReachesOnlyTarget) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.unicast(0, 1, Ping{5});
  net.deliverRound();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_TRUE(net.inbox(2).empty());
  EXPECT_TRUE(net.inbox(0).empty());
}

TEST(SyncNetwork, MultipleUnicastsToDistinctNeighbors) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.unicast(0, 1, Ping{1});
  net.unicast(0, 2, Ping{2});
  net.deliverRound();
  EXPECT_EQ(net.inbox(1).front().msg.value, 1);
  EXPECT_EQ(net.inbox(2).front().msg.value, 2);
}

TEST(SyncNetwork, InboxClearedEachRound) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{1});
  net.deliverRound();
  EXPECT_FALSE(net.inbox(1).empty());
  net.deliverRound();  // nothing sent
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SyncNetwork, SimultaneousSendersAllDeliver) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{10});
  net.broadcast(1, Ping{11});
  net.broadcast(2, Ping{12});
  net.deliverRound();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(net.inbox(v).size(), 2u);  // both neighbors' broadcasts
  }
}

TEST(SyncNetwork, CountersTrackTraffic) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{1});  // 2 deliveries
  net.unicast(1, 2, Ping{2}); // 1 delivery
  net.deliverRound();
  net.deliverRound();
  const Counters& c = net.counters();
  EXPECT_EQ(c.commRounds, 2u);
  EXPECT_EQ(c.broadcasts, 1u);
  EXPECT_EQ(c.unicasts, 1u);
  EXPECT_EQ(c.messagesDelivered, 3u);
  EXPECT_EQ(c.messagesDropped, 0u);
  EXPECT_FALSE(c.toString().empty());
}

TEST(SyncNetwork, IsolatedVertexBroadcastGoesNowhere) {
  graph::Graph g(3, {graph::Edge{0, 1}});
  SyncNetwork<Ping> net(g);
  net.broadcast(2, Ping{9});
  net.deliverRound();
  EXPECT_EQ(net.counters().messagesDelivered, 0u);
}

TEST(SyncNetworkDeathTest, DoubleBroadcastRejected) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{1});
  EXPECT_DEATH(net.broadcast(0, Ping{2}), "allowance");
}

TEST(SyncNetworkDeathTest, UnicastToNonNeighborRejected) {
  graph::Graph g(3, {graph::Edge{0, 1}});
  SyncNetwork<Ping> net(g);
  EXPECT_DEATH(net.unicast(0, 2, Ping{1}), "without a link");
}

TEST(SyncNetworkDeathTest, DuplicateUnicastTargetRejected) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.unicast(0, 1, Ping{1});
  EXPECT_DEATH(net.unicast(0, 1, Ping{2}), "twice in a round");
}

TEST(SyncNetworkDeathTest, MixedBroadcastUnicastRejected) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  net.broadcast(0, Ping{1});
  EXPECT_DEATH(net.unicast(0, 1, Ping{2}), "mixed broadcast");
}

TEST(SyncNetworkDeathTest, OutOfRangeNodeRejected) {
  const graph::Graph g = triangle();
  SyncNetwork<Ping> net(g);
  EXPECT_DEATH(net.broadcast(9, Ping{1}), "out of range");
  EXPECT_DEATH(net.inbox(9), "out of range");
}

}  // namespace
}  // namespace dima::net
