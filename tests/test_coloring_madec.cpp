#include "src/coloring/madec.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/net/trace.hpp"

namespace dima::coloring {
namespace {

TEST(Madec, TrivialGraphs) {
  // No vertices, no edges: converges instantly.
  const EdgeColoringResult empty = colorEdgesMadec(graph::Graph(0));
  EXPECT_TRUE(empty.metrics.converged);
  EXPECT_EQ(empty.metrics.computationRounds, 0u);
  // Isolated vertices only.
  const EdgeColoringResult isolated = colorEdgesMadec(graph::Graph(6));
  EXPECT_TRUE(isolated.metrics.converged);
  EXPECT_EQ(isolated.metrics.computationRounds, 0u);
}

TEST(Madec, SingleEdge) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  const EdgeColoringResult result = colorEdgesMadec(g, {.seed = 3});
  EXPECT_TRUE(result.metrics.converged);
  ASSERT_EQ(result.colors.size(), 1u);
  EXPECT_EQ(result.colors[0], 0);  // lowest-index rule
  EXPECT_EQ(result.colorsUsed(), 1u);
}

TEST(Madec, CompleteGraphProperAndBounded) {
  const graph::Graph g = graph::complete(8);  // Δ = 7
  const EdgeColoringResult result = colorEdgesMadec(g, {.seed = 11});
  EXPECT_TRUE(result.metrics.converged);
  EXPECT_TRUE(verifyEdgeColoring(g, result.colors));
  EXPECT_LE(result.colorsUsed(), 2 * g.maxDegree() - 1);
}

TEST(Madec, StarUsesExactlyDeltaColors) {
  // All edges share the hub, so every color is distinct and the lowest-index
  // rule uses exactly Δ of them.
  const graph::Graph g = graph::star(10);
  const EdgeColoringResult result = colorEdgesMadec(g, {.seed = 5});
  EXPECT_TRUE(result.metrics.converged);
  EXPECT_TRUE(verifyEdgeColoring(g, result.colors));
  EXPECT_EQ(result.colorsUsed(), 9u);
}

TEST(Madec, MetricsAreConsistent) {
  support::Rng rng(7);
  const graph::Graph g = graph::erdosRenyiAvgDegree(100, 6.0, rng);
  const EdgeColoringResult result = colorEdgesMadec(g, {.seed = 7});
  EXPECT_TRUE(result.metrics.converged);
  // 3 communication rounds per computation round.
  EXPECT_EQ(result.metrics.commRounds,
            3 * result.metrics.computationRounds);
  EXPECT_GT(result.metrics.broadcasts, 0u);
  EXPECT_GT(result.metrics.messagesDelivered, 0u);
}

TEST(Madec, DeterministicInSeed) {
  support::Rng rng(8);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 5.0, rng);
  const EdgeColoringResult a = colorEdgesMadec(g, {.seed = 1234});
  const EdgeColoringResult b = colorEdgesMadec(g, {.seed = 1234});
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.metrics.computationRounds, b.metrics.computationRounds);
  const EdgeColoringResult c = colorEdgesMadec(g, {.seed = 999});
  EXPECT_NE(a.metrics.computationRounds * 1000 + a.colorsUsed(),
            c.metrics.computationRounds * 1000 + c.colorsUsed())
      << "different seeds should (almost surely) differ somewhere";
}

TEST(Madec, ThreadedExecutorMatchesSerial) {
  support::Rng rng(9);
  const graph::Graph g = graph::erdosRenyiAvgDegree(120, 8.0, rng);
  MadecOptions serial;
  serial.seed = 77;
  const EdgeColoringResult a = colorEdgesMadec(g, serial);

  support::ThreadPool pool(4);
  MadecOptions pooled;
  pooled.seed = 77;
  pooled.pool = &pool;
  const EdgeColoringResult b = colorEdgesMadec(g, pooled);

  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.metrics.computationRounds, b.metrics.computationRounds);
}

TEST(Madec, TraceRecordsTheRun) {
  net::TraceLog trace;
  trace.enable();
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2},
                     graph::Edge{0, 2}});
  MadecOptions options;
  options.seed = 21;
  options.trace = &trace;
  const EdgeColoringResult result = colorEdgesMadec(g, options);
  EXPECT_TRUE(result.metrics.converged);
  std::size_t colored = 0, doneEvents = 0;
  for (const net::TraceEvent& e : trace.events()) {
    if (e.kind == net::TraceKind::EdgeColored) ++colored;
    if (e.kind == net::TraceKind::NodeDone) ++doneEvents;
  }
  EXPECT_EQ(colored, 2 * g.numEdges());  // both endpoints record each edge
  EXPECT_EQ(doneEvents, g.numVertices());
}

TEST(Madec, InvitorBiasExtremesStillTerminate) {
  support::Rng rng(10);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 4.0, rng);
  for (double bias : {0.1, 0.9}) {
    MadecOptions options;
    options.seed = 31;
    options.invitorBias = bias;
    const EdgeColoringResult result = colorEdgesMadec(g, options);
    EXPECT_TRUE(result.metrics.converged) << "bias " << bias;
    EXPECT_TRUE(verifyEdgeColoring(g, result.colors)) << "bias " << bias;
  }
}

TEST(MadecDeathTest, InvalidBiasRejected) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  MadecOptions options;
  options.invitorBias = 0.0;
  EXPECT_DEATH(colorEdgesMadec(g, options), "bias");
}

TEST(Madec, ReliableRunsNeverHalfCommit) {
  support::Rng rng(20);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 6.0, rng);
  const EdgeColoringResult result = colorEdgesMadec(g, {.seed = 8});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(result.halfCommitted.empty());
}

TEST(Madec, SafetyHoldsUnderMessageDropsModuloHalfCommits) {
  // Message loss can half-commit an edge (the responder colored it, the
  // invitor never learned — the two-generals limit; no protocol avoids it).
  // The guarantee that survives: masking half-committed edges, the partial
  // coloring is proper, i.e. every node's *agreed* colors stay conflict-free.
  support::Rng rng(11);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 6.0, rng);
  for (double drop : {0.05, 0.2, 0.5}) {
    MadecOptions options;
    options.seed = 13;
    options.faults.dropProbability = drop;
    options.maxCycles = 400;
    const EdgeColoringResult result = colorEdgesMadec(g, options);
    std::vector<Color> agreed = result.colors;
    for (graph::EdgeId e : result.halfCommitted) agreed[e] = kNoColor;
    const Verdict verdict = verifyEdgeColoring(g, agreed, true);
    EXPECT_TRUE(verdict.valid) << "drop " << drop << ": " << verdict.reason;
  }
}

TEST(Madec, SafetyHoldsUnderDuplicates) {
  support::Rng rng(12);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 6.0, rng);
  MadecOptions options;
  options.seed = 17;
  options.faults.duplicateProbability = 0.3;
  options.maxCycles = 2000;
  const EdgeColoringResult result = colorEdgesMadec(g, options);
  EXPECT_TRUE(verifyEdgeColoring(g, result.colors,
                                 !result.metrics.converged));
}

}  // namespace
}  // namespace dima::coloring
