#include "src/service/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/rng.hpp"

namespace dima::service {
namespace {

std::vector<std::uint8_t> encodeOne(const CommandFrame& f) {
  std::vector<std::uint8_t> bytes;
  encodeCommand(f, &bytes);
  return bytes;
}

std::vector<std::uint8_t> encodeOne(const ReplyFrame& f) {
  std::vector<std::uint8_t> bytes;
  encodeReply(f, &bytes);
  return bytes;
}

/// Every command kind with every field populated the way the service uses
/// it; encode→decode must be an identity on each.
std::vector<CommandFrame> sampleCommands() {
  std::vector<CommandFrame> out;
  CommandFrame hello = makeFrame<ServiceKind::Hello, CommandFrame>();
  hello.seq = 1;
  hello.a = kServiceWireVersion;
  hello.b = 128;
  out.push_back(hello);

  CommandFrame ins = makeFrame<ServiceKind::InsertEdge, CommandFrame>();
  ins.seq = 2;
  ins.a = 3;
  ins.b = 77;
  out.push_back(ins);

  CommandFrame era = makeFrame<ServiceKind::EraseEdge, CommandFrame>();
  era.seq = 3;
  era.a = 0;
  era.b = 127;
  out.push_back(era);

  CommandFrame qry = makeFrame<ServiceKind::QueryColor, CommandFrame>();
  qry.seq = 0xffffffffU;
  qry.a = 5;
  qry.b = 6;
  out.push_back(qry);

  out.push_back(makeFrame<ServiceKind::Flush, CommandFrame>(
      CommandFrame{.seq = 5}));

  CommandFrame snap = makeFrame<ServiceKind::Snapshot, CommandFrame>();
  snap.seq = 6;
  snap.path = "/tmp/service.ckpt";
  out.push_back(snap);

  out.push_back(makeFrame<ServiceKind::Stats, CommandFrame>(
      CommandFrame{.seq = 7}));
  out.push_back(makeFrame<ServiceKind::Shutdown, CommandFrame>(
      CommandFrame{.seq = 8}));
  return out;
}

/// Every reply kind with its kind-specific fields set.
std::vector<ReplyFrame> sampleReplies() {
  std::vector<ReplyFrame> out;
  ReplyFrame helloOk = makeFrame<ServiceKind::HelloOk, ReplyFrame>();
  helloOk.seq = 1;
  helloOk.a = kServiceWireVersion;
  helloOk.b = 128;
  out.push_back(helloOk);

  ReplyFrame ack = makeFrame<ServiceKind::Ack, ReplyFrame>();
  ack.seq = 2;
  ack.status = static_cast<std::uint8_t>(AckStatus::Applied);
  ack.a = 41;
  out.push_back(ack);

  ReplyFrame color = makeFrame<ServiceKind::ColorInfo, ReplyFrame>();
  color.seq = 3;
  color.status = static_cast<std::uint8_t>(ColorStatus::Colored);
  color.color = 9;
  color.a = 17;  // epoch
  color.b = 2;   // staleness
  out.push_back(color);

  ReplyFrame epoch = makeFrame<ServiceKind::EpochDone, ReplyFrame>();
  epoch.seq = 4;
  epoch.a = 18;
  epoch.b = 12;
  epoch.value = 431;
  out.push_back(epoch);

  ReplyFrame snapOk = makeFrame<ServiceKind::SnapshotOk, ReplyFrame>();
  snapOk.seq = 5;
  snapOk.a = 4096;
  snapOk.value = 0xdeadbeefcafef00dULL;
  out.push_back(snapOk);

  ReplyFrame stats = makeFrame<ServiceKind::StatsInfo, ReplyFrame>();
  stats.seq = 6;
  stats.stats = {96, 300, 11, 1000, 250, 40, 3, 64, 18, 95};
  out.push_back(stats);

  ReplyFrame err = makeFrame<ServiceKind::Error, ReplyFrame>();
  err.seq = 7;
  err.status = static_cast<std::uint8_t>(ErrorCode::BadVersion);
  err.text = "wire version 9 unsupported";
  out.push_back(err);
  return out;
}

TEST(ServiceWire, EveryCommandKindRoundTrips) {
  for (const CommandFrame& f : sampleCommands()) {
    CommandReader reader;
    const std::vector<std::uint8_t> bytes = encodeOne(f);
    reader.feed(bytes.data(), bytes.size());
    CommandFrame decoded;
    std::string error;
    ASSERT_EQ(reader.next(&decoded, &error), DecodeStatus::Frame)
        << serviceKindName(f.kind) << ": " << error;
    EXPECT_EQ(decoded, f) << serviceKindName(f.kind);
    EXPECT_EQ(reader.next(&decoded, &error), DecodeStatus::NeedMore);
    EXPECT_FALSE(reader.midFrame());
  }
}

TEST(ServiceWire, EveryReplyKindRoundTrips) {
  for (const ReplyFrame& f : sampleReplies()) {
    ReplyReader reader;
    const std::vector<std::uint8_t> bytes = encodeOne(f);
    reader.feed(bytes.data(), bytes.size());
    ReplyFrame decoded;
    std::string error;
    ASSERT_EQ(reader.next(&decoded, &error), DecodeStatus::Frame)
        << serviceKindName(f.kind) << ": " << error;
    EXPECT_EQ(decoded, f) << serviceKindName(f.kind);
    EXPECT_EQ(reader.next(&decoded, &error), DecodeStatus::NeedMore);
  }
}

TEST(ServiceWire, ByteAtATimeFeedingReassemblesFrames) {
  const std::vector<CommandFrame> frames = sampleCommands();
  std::vector<std::uint8_t> stream;
  for (const CommandFrame& f : frames) encodeCommand(f, &stream);

  CommandReader reader;
  std::vector<CommandFrame> decoded;
  CommandFrame frame;
  std::string error;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (reader.next(&frame, &error) == DecodeStatus::Frame) {
      decoded.push_back(frame);
    }
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i], frames[i]) << i;
  }
  EXPECT_FALSE(reader.midFrame());
}

TEST(ServiceWire, TruncatedFrameReportsMidFrameNotBad) {
  const std::vector<std::uint8_t> bytes =
      encodeOne(makeFrame<ServiceKind::InsertEdge, CommandFrame>(
          CommandFrame{.seq = 9, .a = 1, .b = 2}));
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    CommandReader reader;
    reader.feed(bytes.data(), cut);
    CommandFrame frame;
    std::string error;
    EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::NeedMore) << cut;
    EXPECT_TRUE(reader.midFrame()) << cut;
  }
}

TEST(ServiceWire, LengthBombIsRejectedBeforeBuffering) {
  // A 4 GiB length prefix must flip the reader to Bad immediately; waiting
  // for the bytes would be an allocation bomb.
  std::vector<std::uint8_t> bytes = {0xff, 0xff, 0xff, 0xff};
  CommandReader reader;
  reader.feed(bytes.data(), bytes.size());
  CommandFrame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
  EXPECT_NE(error.find("ceiling"), std::string::npos) << error;
}

TEST(ServiceWire, BadIsSticky) {
  CommandReader reader;
  const std::uint8_t garbage[5] = {1, 0, 0, 0, 0xee};  // unknown kind 0xee
  reader.feed(garbage, sizeof(garbage));
  CommandFrame frame;
  std::string error;
  ASSERT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
  // Feeding a perfectly valid frame afterwards cannot resynchronize.
  const std::vector<std::uint8_t> good =
      encodeOne(makeFrame<ServiceKind::Flush, CommandFrame>());
  reader.feed(good.data(), good.size());
  EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
}

TEST(ServiceWire, ReplyKindInCommandPositionIsRejected) {
  const std::vector<std::uint8_t> bytes =
      encodeOne(makeFrame<ServiceKind::Ack, ReplyFrame>());
  CommandReader reader;
  reader.feed(bytes.data(), bytes.size());
  CommandFrame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
  EXPECT_NE(error.find("not a command kind"), std::string::npos) << error;
}

TEST(ServiceWire, PayloadSizeMustMatchTheKindExactly) {
  // A Flush payload with one trailing byte: same kind, wrong size.
  std::vector<std::uint8_t> bytes;
  encodeCommand(makeFrame<ServiceKind::Flush, CommandFrame>(), &bytes);
  bytes.push_back(0);      // the stray payload byte
  bytes[0] += 1;           // patch the length prefix to cover it
  CommandReader reader;
  reader.feed(bytes.data(), bytes.size());
  CommandFrame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
}

TEST(ServiceWire, StatsBlockWithWrongFieldCountIsRejected) {
  ReplyFrame stats = makeFrame<ServiceKind::StatsInfo, ReplyFrame>();
  stats.stats = {1, 2, 3};  // kStatsFieldCount is 10
  const std::vector<std::uint8_t> bytes = encodeOne(stats);
  ReplyReader reader;
  reader.feed(bytes.data(), bytes.size());
  ReplyFrame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), DecodeStatus::Bad);
}

// --- frame fuzz ------------------------------------------------------------
// The decoder is the one component that reads attacker bytes; these loops
// run under the ASan/UBSan CI job, where "rejects cleanly" means no crash,
// no overflow, no uninitialized read — only Frame/NeedMore/Bad.

TEST(ServiceWireFuzz, RandomBytesNeverCrashTheCommandReader) {
  support::Rng rng(0xf00dULL);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + rng.below(256);
    std::vector<std::uint8_t> bytes(size);
    for (std::uint8_t& b : bytes) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    CommandReader reader;
    reader.feed(bytes.data(), bytes.size());
    CommandFrame frame;
    std::string error;
    for (int step = 0; step < 64; ++step) {
      const DecodeStatus st = reader.next(&frame, &error);
      if (st != DecodeStatus::Frame) break;
    }
  }
}

TEST(ServiceWireFuzz, TruncatedAndMangledValidStreamsRejectCleanly) {
  support::Rng rng(0xbeefULL);
  std::vector<std::uint8_t> stream;
  for (const CommandFrame& f : sampleCommands()) encodeCommand(f, &stream);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes = stream;
    // Mangle: truncate somewhere and flip a handful of bytes.
    bytes.resize(1 + rng.below(bytes.size()));
    for (int flips = 0; flips < 4 && !bytes.empty(); ++flips) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    CommandReader reader;
    reader.feed(bytes.data(), bytes.size());
    CommandFrame frame;
    std::string error;
    while (reader.next(&frame, &error) == DecodeStatus::Frame) {
    }
  }
}

TEST(ServiceWireFuzz, RawPayloadDecodersBoundEveryRead) {
  support::Rng rng(0xcafeULL);
  for (int round = 0; round < 400; ++round) {
    const std::size_t size = rng.below(64);
    std::vector<std::uint8_t> payload(size);
    for (std::uint8_t& b : payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    CommandFrame cmd;
    ReplyFrame reply;
    std::string error;
    decodeCommandPayload(payload.data(), payload.size(), &cmd, &error);
    decodeReplyPayload(payload.data(), payload.size(), &reply, &error);
  }
}

}  // namespace
}  // namespace dima::service
