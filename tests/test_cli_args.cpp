#include "src/cli/args.hpp"

#include <gtest/gtest.h>

namespace dima::cli {
namespace {

TEST(Args, PositionalsAndOptions) {
  Args args({"color", "--n", "100", "--algo", "madec", "extra"});
  EXPECT_EQ(args.positional(0), "color");
  EXPECT_EQ(args.positional(1), "extra");
  EXPECT_EQ(args.positional(9, "fallback"), "fallback");
  EXPECT_EQ(args.get("n"), "100");
  EXPECT_EQ(args.get("algo"), "madec");
  EXPECT_TRUE(args.ok());
}

TEST(Args, EqualsSyntax) {
  Args args({"gen", "--n=42", "--family=ws"});
  EXPECT_EQ(args.getUint("n", 0), 42u);
  EXPECT_EQ(args.get("family"), "ws");
}

TEST(Args, BooleanFlags) {
  Args args({"validate", "--partial", "--kind", "edge"});
  EXPECT_TRUE(args.has("partial"));
  EXPECT_EQ(args.get("partial"), "");
  EXPECT_EQ(args.get("kind"), "edge");
  Args trailing({"cmd", "--flag"});
  EXPECT_TRUE(trailing.has("flag"));
}

TEST(Args, TypedGettersWithDefaults) {
  Args args({"x", "--count", "7", "--rate", "0.25", "--neg", "-3"});
  EXPECT_EQ(args.getInt("count", 0), 7);
  EXPECT_EQ(args.getInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.getDouble("rate", 0), 0.25);
  EXPECT_EQ(args.getInt("neg", 0), -3);
  EXPECT_TRUE(args.ok());
}

TEST(Args, TypeErrorsAreCollected) {
  Args args({"x", "--count", "seven", "--rate", "fast"});
  EXPECT_EQ(args.getInt("count", 5), 5);
  EXPECT_DOUBLE_EQ(args.getDouble("rate", 1.5), 1.5);
  EXPECT_FALSE(args.ok());
  EXPECT_EQ(args.errors().size(), 2u);
}

TEST(Args, UintRejectsNegative) {
  Args args({"x", "--n", "-4"});
  EXPECT_EQ(args.getUint("n", 9), 9u);
  EXPECT_FALSE(args.ok());
}

TEST(Args, UnusedOptionsReported) {
  Args args({"x", "--used", "1", "--typo-option", "2"});
  (void)args.get("used");
  const auto unused = args.unusedOptions();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-option");
}

TEST(Args, NegativeNumberAsOptionValue) {
  // "-3" does not start with "--", so it is consumed as the value.
  Args args({"x", "--offset", "-3"});
  EXPECT_EQ(args.getInt("offset", 0), -3);
}

TEST(Args, EmptyArgv) {
  const char* argv[] = {"dimacol"};
  Args args(1, argv);
  EXPECT_TRUE(args.positionals().empty());
  EXPECT_EQ(args.positional(0, "help"), "help");
}

}  // namespace
}  // namespace dima::cli
