#include "src/cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dima::cli {
namespace {

struct CommandResult {
  int code = 0;
  std::string out;
  std::string err;
};

CommandResult run(const std::vector<std::string>& tokens) {
  Args args(tokens);
  std::ostringstream out, err;
  CommandResult result;
  result.code = runCommand(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(Cli, HelpAndUnknownCommand) {
  const CommandResult help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const CommandResult none = run({});
  EXPECT_EQ(none.code, 0);
  const CommandResult bogus = run({"frobnicate"});
  EXPECT_EQ(bogus.code, 2);
  EXPECT_NE(bogus.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ColorMadecOnGeneratedGraph) {
  const CommandResult r =
      run({"color", "--family", "er", "--n", "60", "--deg", "5", "--seed",
           "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("algorithm: madec"), std::string::npos);
  EXPECT_NE(r.out.find("valid: yes"), std::string::npos);
}

TEST(Cli, ColorEveryAlgorithm) {
  for (const char* algo : {"madec", "greedy", "misra-gries", "pal"}) {
    const CommandResult r =
        run({"color", "--n", "40", "--deg", "4", "--algo", algo});
    EXPECT_EQ(r.code, 0) << algo << ": " << r.err;
    EXPECT_NE(r.out.find("valid: yes"), std::string::npos) << algo;
  }
  const CommandResult bad = run({"color", "--n", "10", "--algo", "nope"});
  EXPECT_EQ(bad.code, 1);
}

// --engine only swaps the execution substrate; every observable line of
// output except the engine: banner must be byte-identical (PROTOCOLS.md §9).
TEST(Cli, EngineFlagIsObservablyInvisible) {
  const std::vector<std::string> base = {"--family", "er",   "--n", "80",
                                         "--deg",    "6",    "--seed", "7"};
  for (const char* command : {"color", "strong", "matching"}) {
    std::vector<std::string> reference = {command};
    reference.insert(reference.end(), base.begin(), base.end());
    std::vector<std::string> bitplane = reference;
    bitplane.insert(bitplane.end(), {"--engine", "bitplane"});
    const CommandResult ref = run(reference);
    const CommandResult bit = run(bitplane);
    EXPECT_EQ(ref.code, 0) << command << ": " << ref.err;
    EXPECT_EQ(bit.code, 0) << command << ": " << bit.err;
    EXPECT_NE(ref.out.find("engine: reference"), std::string::npos) << command;
    EXPECT_NE(bit.out.find("engine: bitplane"), std::string::npos) << command;
    std::string refRest = ref.out, bitRest = bit.out;
    refRest.replace(refRest.find("engine: reference"), 17, "engine: X");
    bitRest.replace(bitRest.find("engine: bitplane"), 16, "engine: X");
    EXPECT_EQ(refRest, bitRest) << command;
  }
  const CommandResult bad =
      run({"color", "--n", "10", "--engine", "simd-ish"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("unknown --engine"), std::string::npos);
}

TEST(Cli, StrongStrictIsValidPaperMayNotBe) {
  const CommandResult strict =
      run({"strong", "--n", "40", "--deg", "4", "--seed", "5"});
  EXPECT_EQ(strict.code, 0) << strict.err;
  EXPECT_NE(strict.out.find("valid: yes"), std::string::npos);
  const CommandResult paper = run(
      {"strong", "--n", "40", "--deg", "4", "--seed", "5", "--mode",
       "paper"});
  EXPECT_EQ(paper.code, 0) << "paper mode reports, not fails";
}

TEST(Cli, AutomataCommands) {
  for (const char* cmd : {"matching", "cover", "mis", "vcolor"}) {
    const CommandResult r = run({cmd, "--n", "50", "--deg", "5"});
    EXPECT_EQ(r.code, 0) << cmd << ": " << r.err;
    EXPECT_NE(r.out.find("valid: yes"), std::string::npos) << cmd;
  }
}

TEST(Cli, GenRoundTripsThroughColorAndValidate) {
  const std::string dir = ::testing::TempDir();
  const std::string graphPath = dir + "cli_graph.txt";
  const std::string colorsPath = dir + "cli_colors.txt";

  const CommandResult gen = run({"gen", "--family", "ws", "--n", "32", "--k",
                                 "4", "--out", graphPath});
  EXPECT_EQ(gen.code, 0) << gen.err;

  const CommandResult color = run({"color", "--input", graphPath,
                                   "--colors-out", colorsPath});
  EXPECT_EQ(color.code, 0) << color.err;

  const CommandResult validate = run({"validate", "--input", graphPath,
                                      "--colors", colorsPath, "--kind",
                                      "edge"});
  EXPECT_EQ(validate.code, 0) << validate.err;
  EXPECT_NE(validate.out.find("valid"), std::string::npos);

  std::remove(graphPath.c_str());
  std::remove(colorsPath.c_str());
}

TEST(Cli, ValidateDetectsBadColoring) {
  const std::string dir = ::testing::TempDir();
  const std::string graphPath = dir + "cli_tri.txt";
  const std::string colorsPath = dir + "cli_tri_colors.txt";
  {
    std::ofstream g(graphPath);
    g << "n 3\n0 1\n1 2\n0 2\n";
    std::ofstream c(colorsPath);
    c << "0\n0\n1\n";  // edges 0 and 1 share vertex 1 and color 0
  }
  const CommandResult r = run({"validate", "--input", graphPath, "--colors",
                               colorsPath, "--kind", "edge"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("INVALID"), std::string::npos);
  std::remove(graphPath.c_str());
  std::remove(colorsPath.c_str());
}

TEST(Cli, ValidateVertexAndStrongKinds) {
  const std::string dir = ::testing::TempDir();
  const std::string graphPath = dir + "cli_p3.txt";
  {
    std::ofstream g(graphPath);
    g << "n 3\n0 1\n1 2\n";
  }
  const std::string vcPath = dir + "cli_vc.txt";
  {
    std::ofstream c(vcPath);
    c << "0\n1\n0\n";
  }
  EXPECT_EQ(run({"validate", "--input", graphPath, "--colors", vcPath,
                 "--kind", "vertex"})
                .code,
            0);
  const std::string strongPath = dir + "cli_sc.txt";
  {
    std::ofstream c(strongPath);
    c << "0\n1\n2\n3\n";  // 4 arcs of the 2-edge path, all distinct
  }
  EXPECT_EQ(run({"validate", "--input", graphPath, "--colors", strongPath,
                 "--kind", "strong"})
                .code,
            0);
  EXPECT_EQ(run({"validate", "--input", graphPath, "--colors", strongPath,
                 "--kind", "bogus"})
                .code,
            1);
  std::remove(graphPath.c_str());
  std::remove(vcPath.c_str());
  std::remove(strongPath.c_str());
}

TEST(Cli, StrongUndirectedVariant) {
  const CommandResult r = run({"strong", "--n", "30", "--deg", "4",
                               "--undirected", "--seed", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("strong-madec"), std::string::npos);
  EXPECT_NE(r.out.find("valid: yes"), std::string::npos);
}

TEST(Cli, StrongGreedyAlgo) {
  const CommandResult r =
      run({"strong", "--n", "30", "--deg", "4", "--algo", "greedy"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("valid: yes"), std::string::npos);
}

TEST(Cli, ProfileOnConnectedGraph) {
  const CommandResult r =
      run({"profile", "--family", "ws", "--n", "48", "--k", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("completion rounds"), std::string::npos);
  EXPECT_NE(r.out.find("termination detection"), std::string::npos);
  // Disconnected graphs are rejected up front.
  const CommandResult bad =
      run({"profile", "--family", "er", "--n", "60", "--deg", "0.5"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("connected"), std::string::npos);
}

TEST(Cli, AsyncAlphaAndBeta) {
  for (const char* kind : {"alpha", "beta"}) {
    const CommandResult r = run({"async", "--family", "ws", "--n", "32",
                                 "--k", "4", "--synchronizer", kind});
    EXPECT_EQ(r.code, 0) << kind << ": " << r.err;
    EXPECT_NE(r.out.find("identical coloring: yes"), std::string::npos)
        << kind;
  }
}

TEST(Cli, FigureSmallScale) {
  const CommandResult r = run({"figure", "--id", "3", "--runs", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("FIG3"), std::string::npos);
  const CommandResult bad = run({"figure", "--id", "9"});
  EXPECT_EQ(bad.code, 1);
}

TEST(Cli, BadOptionValueYieldsExitCode2) {
  const CommandResult r = run({"color", "--n", "many"});
  EXPECT_EQ(r.code, 2);
  EXPECT_FALSE(r.err.empty());
}

TEST(Cli, UnusedOptionWarns) {
  const CommandResult r = run({"matching", "--n", "20", "--bogus-opt", "1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.err.find("unused option --bogus-opt"), std::string::npos);
}

TEST(Cli, GenToStdout) {
  const CommandResult r = run({"gen", "--family", "cycle", "--n", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("n 5"), std::string::npos);
  EXPECT_NE(r.out.find("0 1"), std::string::npos);
}

TEST(Cli, MissingInputFileFails) {
  const CommandResult r = run({"color", "--input", "/no/such/file"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot read"), std::string::npos);
}

// --shards only swaps the execution substrate, exactly like --engine:
// after stripping the `shards:` banner, every observable line must be
// byte-identical to the single-arena run (DESIGN.md §13).
TEST(Cli, ShardFlagIsObservablyInvisible) {
  const std::vector<std::string> base = {"--family", "er", "--n", "80",
                                         "--deg", "6", "--seed", "7"};
  for (const char* command : {"color", "strong", "matching"}) {
    std::vector<std::string> reference = {command};
    reference.insert(reference.end(), base.begin(), base.end());
    std::vector<std::string> sharded = reference;
    sharded.insert(sharded.end(), {"--shards", "4", "--partition", "degree",
                                   "--workers", "2"});
    const CommandResult ref = run(reference);
    const CommandResult shd = run(sharded);
    EXPECT_EQ(ref.code, 0) << command << ": " << ref.err;
    EXPECT_EQ(shd.code, 0) << command << ": " << shd.err;
    const std::string banner = "shards: 4 (degree partition, 2 worker(s) each)\n";
    const std::size_t at = shd.out.find(banner);
    ASSERT_NE(at, std::string::npos) << command << ":\n" << shd.out;
    std::string stripped = shd.out;
    stripped.erase(at, banner.size());
    EXPECT_EQ(ref.out, stripped) << command;
  }
  const CommandResult bad =
      run({"color", "--n", "10", "--shards", "2", "--partition", "random"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("unknown --partition"), std::string::npos);
}

// Sharding runs on the reference substrate only; the flag conflict must be
// a clean CLI error on every command that accepts both flags, not a
// contract abort inside the driver.
TEST(Cli, ShardsAndBitPlaneEngineConflictIsACleanError) {
  for (const char* command : {"color", "strong", "matching"}) {
    const CommandResult r = run({command, "--family", "er", "--n", "20",
                                 "--deg", "4", "--shards", "2", "--engine",
                                 "bitplane"});
    EXPECT_EQ(r.code, 1) << command;
    EXPECT_NE(r.err.find("--shards and --engine bitplane are mutually "
                         "exclusive"),
              std::string::npos)
        << command << ": " << r.err;
  }
}

// The committed SNAP fixture end to end: text load (skipping the planted
// self-loop and duplicate), ingest to a CSR image, and the mapped sharded
// color path must produce the identical palette.
TEST(Cli, SnapFixtureColorsIdenticallyViaTextAndMappedCsr) {
  const std::string fixture = std::string(DIMA_TESTDATA_DIR) +
                              "/tiny_social.snap";
  const std::string dir = ::testing::TempDir();
  const std::string textColors = dir + "cli_snap_text.colors";
  const std::string csr = dir + "cli_snap.csr";
  const std::string csrColors = dir + "cli_snap_csr.colors";

  const CommandResult text = run({"color", "--input", fixture, "--shards",
                                  "2", "--seed", "9", "--colors-out",
                                  textColors});
  EXPECT_EQ(text.code, 0) << text.err;
  EXPECT_NE(text.err.find("skipped 1 self-loop(s) and 1 duplicate edge(s)"),
            std::string::npos)
      << text.err;
  EXPECT_NE(text.out.find("valid: yes"), std::string::npos);

  const CommandResult ingest = run({"ingest", fixture, "--out", csr});
  EXPECT_EQ(ingest.code, 0) << ingest.err;
  EXPECT_NE(ingest.out.find("ingested snap"), std::string::npos);
  EXPECT_NE(ingest.out.find("n=24 m=36"), std::string::npos) << ingest.out;

  const CommandResult mapped = run({"color", "--input", csr, "--shards", "2",
                                    "--seed", "9", "--colors-out",
                                    csrColors});
  EXPECT_EQ(mapped.code, 0) << mapped.err;
  EXPECT_NE(mapped.out.find("CSR)"), std::string::npos) << mapped.out;
  EXPECT_NE(mapped.out.find("valid: yes"), std::string::npos);

  // --engine is parsed on the mapped path too: bitplane is rejected with a
  // clean error instead of being silently ignored.
  const CommandResult badEngine =
      run({"color", "--input", csr, "--engine", "bitplane"});
  EXPECT_EQ(badEngine.code, 1);
  EXPECT_NE(badEngine.err.find("mapped CSR path"), std::string::npos)
      << badEngine.err;

  std::ifstream a(textColors), b(csrColors);
  const std::string colorsA((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string colorsB((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_FALSE(colorsA.empty());
  EXPECT_EQ(colorsA, colorsB);

  std::remove(textColors.c_str());
  std::remove(csr.c_str());
  std::remove(csrColors.c_str());
}

TEST(Cli, IngestRejectsBadInput) {
  const CommandResult noOut = run({"ingest", "/no/such/file"});
  EXPECT_EQ(noOut.code, 2);
  const CommandResult missing =
      run({"ingest", "/no/such/file", "--out", ::testing::TempDir() +
           "cli_missing.csr"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_FALSE(missing.err.empty());
}

TEST(Cli, ChurnEndToEnd) {
  const CommandResult r =
      run({"churn", "--family", "er", "--n", "120", "--deg", "6", "--seed",
           "3", "--batches", "5", "--rate", "0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("batch"), std::string::npos);
  EXPECT_NE(r.out.find("frontier"), std::string::npos);
  EXPECT_NE(r.out.find("all batches valid: yes"), std::string::npos);
}

}  // namespace
}  // namespace dima::cli
