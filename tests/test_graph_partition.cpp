/// \file test_graph_partition.cpp
/// The partitioner (graph/partition.hpp): both strategies must produce a
/// complete, consistent assignment (shardOf and members agree, members
/// ascending), be deterministic pure functions of (topology, K), and honor
/// their respective balance guarantees.

#include "src/graph/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

void expectConsistent(const Partition& p, std::size_t n) {
  ASSERT_EQ(p.shardOf.size(), n);
  ASSERT_EQ(p.members.size(), p.count);
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < p.count; ++s) {
    EXPECT_TRUE(std::is_sorted(p.members[s].begin(), p.members[s].end()))
        << "shard " << s;
    for (const VertexId v : p.members[s]) {
      EXPECT_EQ(p.shardOf[v], s) << "vertex " << v;
    }
    covered += p.members[s].size();
  }
  EXPECT_EQ(covered, n);
}

TEST(Partition, BlockIsContiguousAndBalanced) {
  const Partition p = makeBlockPartition(10, 3);
  expectConsistent(p, 10);
  // 10 over 3 shards: sizes 4, 3, 3 with contiguous ranges.
  EXPECT_EQ(p.members[0].size(), 4u);
  EXPECT_EQ(p.members[1].size(), 3u);
  EXPECT_EQ(p.members[2].size(), 3u);
  EXPECT_EQ(p.members[0].front(), 0u);
  EXPECT_EQ(p.members[0].back(), 3u);
  EXPECT_EQ(p.members[2].back(), 9u);
}

TEST(Partition, BlockHandlesMoreShardsThanVertices) {
  const Partition p = makeBlockPartition(2, 8);
  expectConsistent(p, 2);
  EXPECT_EQ(p.count, 8u);  // trailing shards are simply empty
  EXPECT_EQ(p.members[0].size(), 1u);
  EXPECT_EQ(p.members[1].size(), 1u);
  for (std::uint32_t s = 2; s < 8; ++s) EXPECT_TRUE(p.members[s].empty());
}

TEST(Partition, DegreeBalancedSpreadsTheLoad) {
  // A star's hub dominates the degree mass; the balanced strategy must not
  // put it with all the leaves on one shard.
  const Graph g = star(64);
  const Partition p = makePartition(g, PartitionKind::DegreeBalanced, 2);
  expectConsistent(p, g.numVertices());
  std::uint64_t load[2] = {0, 0};
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    load[p.shardOf[v]] += 1 + g.degree(v);
  }
  const std::uint64_t hi = std::max(load[0], load[1]);
  const std::uint64_t lo = std::min(load[0], load[1]);
  EXPECT_LE(hi - lo, 64u);  // within one heaviest-vertex weight
}

TEST(Partition, DegreeBalancedIsDeterministic) {
  support::Rng rng(11);
  const Graph g = barabasiAlbert(200, 3, 1.0, rng);
  const Partition a = makePartition(g, PartitionKind::DegreeBalanced, 4);
  const Partition b = makePartition(g, PartitionKind::DegreeBalanced, 4);
  EXPECT_EQ(a.shardOf, b.shardOf);
  expectConsistent(a, g.numVertices());
}

TEST(Partition, ParseNamesRoundTrip) {
  PartitionKind k = PartitionKind::DegreeBalanced;
  EXPECT_TRUE(parsePartitionKind("block", &k));
  EXPECT_EQ(k, PartitionKind::Block);
  EXPECT_TRUE(parsePartitionKind("degree", &k));
  EXPECT_EQ(k, PartitionKind::DegreeBalanced);
  EXPECT_FALSE(parsePartitionKind("random", &k));
  EXPECT_STREQ(partitionKindName(PartitionKind::Block), "block");
  EXPECT_STREQ(partitionKindName(PartitionKind::DegreeBalanced), "degree");
}

TEST(Partition, BoundaryArcFractionBounds) {
  support::Rng rng(12);
  const Graph g = erdosRenyiAvgDegree(200, 6.0, rng);
  const Partition one = makePartition(g, PartitionKind::Block, 1);
  EXPECT_EQ(boundaryArcFraction(g, one), 0.0);
  const Partition many = makePartition(g, PartitionKind::Block, 8);
  const double f = boundaryArcFraction(g, many);
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(Partition, SingletonAndEmptyGraphs) {
  expectConsistent(makeBlockPartition(0, 4), 0);
  const Graph g(1);
  const Partition p = makePartition(g, PartitionKind::DegreeBalanced, 4);
  expectConsistent(p, 1);
}

}  // namespace
}  // namespace dima::graph
