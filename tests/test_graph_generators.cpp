#include "src/graph/generators.hpp"

#include <gtest/gtest.h>

#include "src/graph/metrics.hpp"
#include "src/support/stats.hpp"

namespace dima::graph {
namespace {

using support::Rng;

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(1);
  for (std::size_t m : {0u, 1u, 10u, 100u, 300u}) {
    const Graph g = erdosRenyiGnm(50, m, rng);
    EXPECT_EQ(g.numEdges(), m);
    EXPECT_EQ(g.numVertices(), 50u);
  }
}

TEST(ErdosRenyiGnm, DenseRegimeAndCompleteGraph) {
  Rng rng(2);
  const std::size_t maxEdges = 10 * 9 / 2;
  const Graph g = erdosRenyiGnm(10, maxEdges, rng);
  EXPECT_EQ(g.numEdges(), maxEdges);
  EXPECT_EQ(g.maxDegree(), 9u);
}

TEST(ErdosRenyiAvgDegree, HitsRequestedAverage) {
  Rng rng(3);
  const Graph g = erdosRenyiAvgDegree(200, 8.0, rng);
  EXPECT_EQ(g.numEdges(), 800u);
  EXPECT_NEAR(g.averageDegree(), 8.0, 1e-9);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(4);
  const std::size_t n = 300;
  const double p = 0.05;
  support::OnlineStats ms;
  for (int i = 0; i < 10; ++i) {
    ms.add(static_cast<double>(erdosRenyiGnp(n, p, rng).numEdges()));
  }
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(ms.mean(), expected, expected * 0.15);
}

TEST(ErdosRenyiGnp, ExtremeProbabilities) {
  Rng rng(5);
  EXPECT_EQ(erdosRenyiGnp(20, 0.0, rng).numEdges(), 0u);
  EXPECT_EQ(erdosRenyiGnp(20, 1.0, rng).numEdges(), 20u * 19 / 2);
}

TEST(BarabasiAlbert, SizeAndConnectivity) {
  Rng rng(6);
  const Graph g = barabasiAlbert(100, 3, 1.0, rng);
  EXPECT_EQ(g.numVertices(), 100u);
  // Every newcomer adds m edges (subject to dedup, rare at this density).
  EXPECT_GE(g.numEdges(), 95u * 3 / 2);
  EXPECT_TRUE(isConnected(g));
}

TEST(BarabasiAlbert, HigherPowerConcentratesDegree) {
  support::OnlineStats flatMax, steepMax;
  for (int i = 0; i < 12; ++i) {
    Rng rngA(100 + static_cast<unsigned>(i));
    Rng rngB(100 + static_cast<unsigned>(i));
    flatMax.add(static_cast<double>(
        barabasiAlbert(150, 2, 0.0, rngA).maxDegree()));
    steepMax.add(static_cast<double>(
        barabasiAlbert(150, 2, 2.0, rngB).maxDegree()));
  }
  EXPECT_GT(steepMax.mean(), flatMax.mean());
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Rng rng(7);
  const Graph g = wattsStrogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.numEdges(), 20u * 2);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  Rng rng(8);
  const Graph g = wattsStrogatz(64, 6, 0.3, rng);
  EXPECT_EQ(g.numEdges(), 64u * 3);
  EXPECT_GE(g.maxDegree(), 6u);
}

TEST(WattsStrogatz, FullRewireStillSimple) {
  Rng rng(9);
  const Graph g = wattsStrogatz(40, 4, 1.0, rng);
  EXPECT_EQ(g.numEdges(), 80u);  // builder would have deduped violations
}

TEST(StructuredFamilies, Complete) {
  const Graph g = complete(6);
  EXPECT_EQ(g.numEdges(), 15u);
  EXPECT_EQ(g.maxDegree(), 5u);
}

TEST(StructuredFamilies, CyclePathStar) {
  EXPECT_EQ(cycle(5).numEdges(), 5u);
  EXPECT_EQ(cycle(5).maxDegree(), 2u);
  EXPECT_EQ(path(5).numEdges(), 4u);
  EXPECT_EQ(path(1).numEdges(), 0u);
  EXPECT_EQ(star(7).maxDegree(), 6u);
  EXPECT_EQ(star(1).numEdges(), 0u);
}

TEST(StructuredFamilies, Grid) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.numVertices(), 12u);
  EXPECT_EQ(g.numEdges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_EQ(g.maxDegree(), 4u);
  EXPECT_TRUE(isConnected(g));
}

TEST(RandomTree, IsATree) {
  Rng rng(10);
  for (std::size_t n : {1u, 2u, 10u, 100u}) {
    const Graph g = randomTree(n, rng);
    EXPECT_EQ(g.numEdges(), n - (n > 0 ? 1 : 0));
    EXPECT_TRUE(isForest(g));
    EXPECT_TRUE(isConnected(g));
  }
}

TEST(RandomRegular, DegreesAreExact) {
  Rng rng(11);
  for (std::size_t d : {0u, 2u, 3u, 4u}) {
    const Graph g = randomRegular(20, d, rng);
    for (VertexId v = 0; v < 20; ++v) ASSERT_EQ(g.degree(v), d);
  }
}

TEST(RandomBipartite, NoIntraSideEdges) {
  Rng rng(12);
  const Graph g = randomBipartite(10, 15, 0.4, rng);
  EXPECT_EQ(g.numVertices(), 25u);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 10u);
    EXPECT_GE(e.v, 10u);
  }
}

TEST(RandomGeometric, EdgesRespectRadius) {
  Rng rng(13);
  const GeometricGraph gg = randomGeometric(60, 0.25, rng);
  EXPECT_EQ(gg.positions.size(), 60u);
  for (const Edge& e : gg.graph.edges()) {
    const double dx = gg.positions[e.u].first - gg.positions[e.v].first;
    const double dy = gg.positions[e.u].second - gg.positions[e.v].second;
    EXPECT_LE(dx * dx + dy * dy, 0.25 * 0.25 + 1e-12);
  }
}

TEST(RandomGeometric, ZeroRadiusHasNoEdges) {
  Rng rng(14);
  EXPECT_EQ(randomGeometric(30, 0.0, rng).graph.numEdges(), 0u);
}

TEST(Generators, SameSeedSameGraph) {
  Rng a(42), b(42);
  EXPECT_TRUE(erdosRenyiGnm(50, 100, a) == erdosRenyiGnm(50, 100, b));
  Rng c(43), d(43);
  EXPECT_TRUE(wattsStrogatz(30, 4, 0.5, c) == wattsStrogatz(30, 4, 0.5, d));
  Rng e(44), f(44);
  EXPECT_TRUE(barabasiAlbert(40, 2, 1.0, e) ==
              barabasiAlbert(40, 2, 1.0, f));
}

TEST(GeneratorsDeathTest, InvalidParametersRejected) {
  Rng rng(15);
  EXPECT_DEATH(erdosRenyiGnm(4, 100, rng), "exceeds max");
  EXPECT_DEATH(wattsStrogatz(10, 3, 0.1, rng), "even k");
  EXPECT_DEATH(wattsStrogatz(4, 4, 0.1, rng), "0 < k < n");
  EXPECT_DEATH(barabasiAlbert(5, 5, 1.0, rng), "1 <= m < n");
  EXPECT_DEATH(randomRegular(5, 3, rng), "even");
}

}  // namespace
}  // namespace dima::graph
