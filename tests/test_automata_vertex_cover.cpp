#include "src/automata/vertex_cover.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"

namespace dima::automata {
namespace {

TEST(VertexCover, CoversEveryEdge) {
  support::Rng rng(1);
  const graph::Graph graphs[] = {
      graph::complete(12),
      graph::star(15),
      graph::cycle(11),
      graph::erdosRenyiAvgDegree(90, 5.0, rng),
  };
  for (const graph::Graph& g : graphs) {
    const VertexCoverResult result = vertexCoverViaMatching(g, 42);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(isVertexCover(g, result.cover));
  }
}

TEST(VertexCover, TwoApproximationCertificate) {
  support::Rng rng(2);
  const graph::Graph g = graph::erdosRenyiAvgDegree(100, 8.0, rng);
  const VertexCoverResult result = vertexCoverViaMatching(g, 7);
  // |cover| = 2·|matching| and OPT ≥ |matching| ⇒ certified 2-approx.
  EXPECT_EQ(result.cover.size(), 2 * result.matchingSize);
}

TEST(VertexCover, EmptyGraphNeedsNoCover) {
  const VertexCoverResult result = vertexCoverViaMatching(graph::Graph(4), 1);
  EXPECT_TRUE(result.cover.empty());
  EXPECT_TRUE(isVertexCover(graph::Graph(4), result.cover));
}

TEST(IsVertexCover, DetectsUncoveredEdge) {
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2}});
  EXPECT_TRUE(isVertexCover(g, {1}));
  EXPECT_FALSE(isVertexCover(g, {0}));
  EXPECT_FALSE(isVertexCover(g, {}));
  EXPECT_FALSE(isVertexCover(g, {9}));  // bogus id
}

TEST(VertexCover, StarCoverIsSmall) {
  // On a star, any maximal matching has exactly one edge, so the cover has
  // exactly two vertices (optimum is 1 — the 2-approx bound is tight here).
  const VertexCoverResult result = vertexCoverViaMatching(graph::star(20), 3);
  EXPECT_EQ(result.matchingSize, 1u);
  EXPECT_EQ(result.cover.size(), 2u);
}

}  // namespace
}  // namespace dima::automata
