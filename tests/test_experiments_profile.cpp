#include "src/experiments/profile.hpp"

#include <gtest/gtest.h>

#include "src/experiments/figures.hpp"
#include "src/experiments/replot.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::exp {
namespace {

graph::Graph connectedEr(std::size_t n, double deg, std::uint64_t seed) {
  support::Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    graph::Graph g = graph::erdosRenyiAvgDegree(n, deg, rng);
    if (graph::isConnected(g)) return g;
  }
  return graph::wattsStrogatz(n, 6, 0.2, rng);  // always connected
}

TEST(CompletionProfile, QuantilesAndDetectionAreConsistent) {
  const graph::Graph g = connectedEr(80, 8.0, 1);
  coloring::MadecOptions options;
  options.seed = 5;
  const CompletionProfile profile = madecCompletionProfile(g, options);

  EXPECT_EQ(profile.completionRound.size(), g.numVertices());
  EXPECT_GT(profile.lastCompletion, 0u);
  EXPECT_LE(profile.p50, profile.p90);
  EXPECT_LE(profile.p90, profile.p99);
  EXPECT_LE(profile.p99, static_cast<double>(profile.lastCompletion));
  // Detection happens after the last completion, within tree height.
  EXPECT_GE(profile.detectionRound, profile.lastCompletion);
  const auto height = static_cast<std::uint64_t>(graph::diameter(g));
  EXPECT_LE(profile.detectionRound, profile.lastCompletion + height);
  EXPECT_GT(profile.treeBuildRounds, 0u);
  EXPECT_GT(profile.colors, 0u);
}

TEST(CompletionProfile, MatchesRunRoundCount) {
  const graph::Graph g = connectedEr(60, 6.0, 2);
  coloring::MadecOptions options;
  options.seed = 9;
  const CompletionProfile profile = madecCompletionProfile(g, options);
  const coloring::EdgeColoringResult rerun = colorEdgesMadec(g, options);
  EXPECT_EQ(profile.lastCompletion, rerun.metrics.computationRounds);
}

TEST(CompletionProfile, MostNodesFinishWellBeforeTheLast) {
  // The round count is a max statistic; the median should sit clearly
  // below it on any non-trivial run (the tail is what Prop. 3 worries
  // about).
  const graph::Graph g = connectedEr(150, 8.0, 3);
  coloring::MadecOptions options;
  options.seed = 4;
  const CompletionProfile profile = madecCompletionProfile(g, options);
  EXPECT_LT(profile.p50, static_cast<double>(profile.lastCompletion));
}

TEST(CompletionProfileDeathTest, RequiresConnectedGraph) {
  EXPECT_DEATH(madecCompletionProfile(graph::Graph(4)), "connected");
}

TEST(Replot, RoundTripsFigureCsv) {
  const FigureReport report = runFigure3(77, 2);
  const ReplotResult replot = replotFigureCsv(report.csv, "roundtrip");
  ASSERT_TRUE(replot.ok) << replot.error;
  EXPECT_EQ(replot.rows, report.records.size());
  EXPECT_NE(replot.plot.find("roundtrip"), std::string::npos);
  EXPECT_NE(replot.plot.find("n=200"), std::string::npos);
  EXPECT_NE(replot.plot.find("n=400"), std::string::npos);
  EXPECT_NE(replot.plot.find("fit:"), std::string::npos);
}

TEST(Replot, RejectsMalformedInput) {
  EXPECT_FALSE(replotFigureCsv("").ok);
  EXPECT_FALSE(replotFigureCsv("a,b,c\n1,2,3\n").ok);  // missing columns
  const ReplotResult headerOnly = replotFigureCsv("config,n,delta,rounds\n");
  EXPECT_FALSE(headerOnly.ok);
  EXPECT_NE(headerOnly.error.find("no data"), std::string::npos);
  const ReplotResult shortRow =
      replotFigureCsv("config,n,delta,rounds\nx,1\n");
  EXPECT_FALSE(shortRow.ok);
}

TEST(Replot, MinimalValidCsv) {
  const ReplotResult r = replotFigureCsv(
      "n,delta,rounds\n100,4,9\n100,8,17\n200,4,8\n200,8,18\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.rows, 4u);
}

}  // namespace
}  // namespace dima::exp
