#include "src/baselines/greedy.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

namespace dima::baselines {
namespace {

TEST(Greedy, ProperOnRandomGraphs) {
  support::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(100, 7.0, rng);
    for (EdgeOrder order :
         {EdgeOrder::ById, EdgeOrder::Random, EdgeOrder::HighDegreeFirst}) {
      const GreedyResult result = greedyEdgeColoring(g, order, 9);
      const coloring::Verdict verdict =
          coloring::verifyEdgeColoring(g, result.colors);
      EXPECT_TRUE(verdict.valid) << verdict.reason;
      EXPECT_LE(result.colorsUsed, 2 * g.maxDegree() - 1);
      EXPECT_GE(result.colorsUsed, g.maxDegree());
    }
  }
}

TEST(Greedy, EmptyGraph) {
  const GreedyResult result = greedyEdgeColoring(graph::Graph(3));
  EXPECT_TRUE(result.colors.empty());
  EXPECT_EQ(result.colorsUsed, 0u);
}

TEST(Greedy, StarUsesExactlyDelta) {
  const GreedyResult result = greedyEdgeColoring(graph::star(9));
  EXPECT_EQ(result.colorsUsed, 8u);
}

TEST(Greedy, EvenCycleUsesTwoColors) {
  const GreedyResult result = greedyEdgeColoring(graph::cycle(8));
  EXPECT_EQ(result.colorsUsed, 2u);
}

TEST(Greedy, OddCycleNeedsThree) {
  const GreedyResult result = greedyEdgeColoring(graph::cycle(9));
  EXPECT_EQ(result.colorsUsed, 3u);
}

TEST(Greedy, RandomOrderIsSeedDeterministic) {
  support::Rng rng(2);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 6.0, rng);
  const GreedyResult a = greedyEdgeColoring(g, EdgeOrder::Random, 5);
  const GreedyResult b = greedyEdgeColoring(g, EdgeOrder::Random, 5);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(Greedy, CompleteGraphBounded) {
  const graph::Graph g = graph::complete(9);  // Δ = 8, χ' = 9 (odd K_n)
  const GreedyResult result = greedyEdgeColoring(g);
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors));
  EXPECT_GE(result.colorsUsed, 9u);
  EXPECT_LE(result.colorsUsed, 15u);
}

}  // namespace
}  // namespace dima::baselines
