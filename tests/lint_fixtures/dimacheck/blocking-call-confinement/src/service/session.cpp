// Fixture: blocking-call-confinement must flag a socket/poll syscall in
// any TU other than src/service/transport.cpp, with a caller trace.
namespace fix {

int waitReadable(int fd, int timeoutMs) {
  // Blocking syscall outside the transport TU.
  return ::poll(nullptr, 0, timeoutMs) + fd * 0;
}

int sessionLoop(int fd) {
  return waitReadable(fd, 1000);
}

}  // namespace fix
