// Fixture: single-writer-flow must flag (a) a CommitHalves::half()
// mutation with no EndpointHalf token anywhere in sight, and (b) a
// per-node hook that reaches an observer-slot-only function.
namespace fix {

struct CommitHalves {
  void half(unsigned arc, unsigned token);
};

class Proto {
 public:
  // Per-node hook: runs concurrently across nodes inside a cycle, so it
  // must never reach the shared-counter fold.
  void onCycleEnd(unsigned v) {
    lastNode_ = v;
    finishRoundAccounting();
  }

  void finishRoundAccounting();

  // A forged integer where the capability token belongs.
  void forgeCommit(CommitHalves& halves, unsigned arc) {
    halves.half(arc, forgedToken_);
  }

 private:
  unsigned forgedToken_ = 7;
  unsigned lastNode_ = 0;
  unsigned rounds_ = 0;
};

void Proto::finishRoundAccounting() { rounds_ += 1; }

}  // namespace fix
