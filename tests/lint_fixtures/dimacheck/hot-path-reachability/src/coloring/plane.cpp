// Fixture: hot-path-reachability must flag an allocation reached
// *transitively* from a forPlaneWords lambda — the banned token is two
// hops from the root, in a helper the lambda calls.
namespace fix {

using Word = unsigned long long;

template <class Fn>
void forPlaneWords(const Word* words, unsigned n, Fn&& fn) {
  for (unsigned w = 0; w < n; ++w) {
    if (words[w] != 0) fn(w, words[w]);
  }
}

unsigned* scratchBuffer() {
  return new unsigned[64];  // the allocation the round loop must not reach
}

void runCycle(const Word* words, unsigned n, unsigned* sink) {
  forPlaneWords(words, n, [&](unsigned w, Word word) {
    unsigned* s = scratchBuffer();
    s[0] = static_cast<unsigned>(word) + w;
    *sink += s[0];
  });
}

}  // namespace fix
