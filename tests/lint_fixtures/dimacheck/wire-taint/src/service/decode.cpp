// Fixture: wire-taint must flag wire-decoded integers that reach a
// multiplication, an index, or an allocation size before any bounds check.
//
// The first function is the PR-9 bootstrap bug in its original shape: the
// length check multiplies the wire-controlled count, so `samples * 8`
// wraps the comparison type and the check passes for absurd counts. The
// self-check pins that this yields a *multiplication* finding forever.
#include <cstdint>
#include <vector>

namespace fix {

std::uint64_t getU64(const std::uint8_t** p);

struct Reader {
  std::uint64_t takeU64();
};

bool decodeBootstrap(const std::uint8_t* p, const std::uint8_t* end,
                     std::vector<std::uint64_t>* out) {
  const std::uint64_t samples = getU64(&p);
  // Wrong: the product wraps, so the bound is a no-op for huge counts.
  if (static_cast<std::uint64_t>(end - p) < samples * 8) {
    return false;
  }
  for (std::uint64_t i = 0; i < samples; ++i) {
    out->push_back(getU64(&p));
  }
  return true;
}

void decodeHeader(Reader& in, std::vector<std::uint32_t>* slots) {
  const std::uint64_t count = in.takeU64();
  slots->resize(count);  // unchecked wire count sizes an allocation
}

}  // namespace fix
