// Clean counterpart of the wire-taint fixture: every wire-decoded value
// crosses a bounds comparison (dividing the budget, never multiplying the
// count) before it sizes, indexes, or multiplies anything.
#include <cstdint>
#include <vector>

namespace fix {

std::uint64_t getU64(const std::uint8_t** p);

struct Reader {
  std::uint64_t takeU64();
};

bool decodeBootstrap(const std::uint8_t* p, const std::uint8_t* end,
                     std::vector<std::uint64_t>* out) {
  const std::uint64_t samples = getU64(&p);
  // Right: divide the remaining budget; nothing can wrap.
  if (samples > static_cast<std::uint64_t>(end - p) / 8) {
    return false;
  }
  out->reserve(samples);
  for (std::uint64_t i = 0; i < samples; ++i) {
    out->push_back(getU64(&p));
  }
  return true;
}

bool decodeHeader(Reader& in, std::vector<std::uint32_t>* slots,
                  std::uint64_t limit) {
  const std::uint64_t count = in.takeU64();
  if (count > limit) return false;
  slots->resize(count);
  return true;
}

}  // namespace fix
