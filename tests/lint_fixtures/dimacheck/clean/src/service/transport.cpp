// Clean counterpart of blocking-call-confinement: the syscalls live in the
// one TU allowed to make them.
namespace fix {

int waitIo(int fd, int timeoutMs) {
  return ::poll(nullptr, 0, timeoutMs) + fd * 0;
}

int pump(int fd) {
  return ::recv(fd, nullptr, 0, 0);
}

}  // namespace fix
