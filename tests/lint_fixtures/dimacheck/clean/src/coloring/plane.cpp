// Clean counterpart of hot-path-reachability: the plane lambda and the
// annotated hot function touch only preallocated state. The placement-new
// in constructAt must NOT count as allocation.
namespace fix {

using Word = unsigned long long;

template <class Fn>
void forPlaneWords(const Word* words, unsigned n, Fn&& fn) {
  for (unsigned w = 0; w < n; ++w) {
    if (words[w] != 0) fn(w, words[w]);
  }
}

void foldWord(unsigned w, Word word, unsigned* sink) {
  *sink += static_cast<unsigned>(word >> (w % 8));
}

void runCycle(const Word* words, unsigned n, unsigned* sink) {
  forPlaneWords(words, n, [&](unsigned w, Word word) {
    foldWord(w, word, sink);
  });
}

// dimacheck: hot-path
void deliverRound(unsigned* slots, unsigned n, unsigned epoch) {
  for (unsigned i = 0; i < n; ++i) slots[i] = epoch;
}

void constructAt(void* slot, unsigned value) {
  ::new (slot) unsigned(value);  // placement new: no allocation
}

}  // namespace fix
