// Clean counterpart of single-writer-flow: every half() mutation is
// EndpointHalf-minted, and the observer-slot fold is called from the
// sync driver, not from a per-node hook.
namespace fix {

struct EndpointHalf {
  static unsigned ownedBy(unsigned node);
  static unsigned arcEnd(unsigned arc);
};

struct CommitHalves {
  void half(unsigned arc, unsigned token);
};

class Proto {
 public:
  void onCycleEnd(unsigned v) { lastNode_ = v; }

  void commitInline(CommitHalves& halves, unsigned arc, unsigned node) {
    halves.half(arc, EndpointHalf::ownedBy(node));
  }

  void commitThreaded(CommitHalves& halves, unsigned arc,
                      EndpointHalf token) {
    halves.half(arc, tokenValue(token));
  }

  void finishRoundAccounting();

 private:
  unsigned tokenValue(EndpointHalf token);
  unsigned lastNode_ = 0;
  unsigned rounds_ = 0;
};

void Proto::finishRoundAccounting() { rounds_ += 1; }

// The sync driver owns the exclusive observer slot; calling the fold from
// here is the sanctioned path.
void runSyncRound(Proto& proto, unsigned nodes) {
  for (unsigned v = 0; v < nodes; ++v) proto.onCycleEnd(v);
  proto.finishRoundAccounting();
}

}  // namespace fix
