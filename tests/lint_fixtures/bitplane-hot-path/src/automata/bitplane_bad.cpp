// Bad fixture: a bit-plane engine TU (matched by its `bitplane*` filename —
// deliberately NOT carrying the hot-path marker, so only the path-keyed
// bitplane-hot-path rule may trip) using per-node virtual dispatch and a
// type-erased callback in what would be the round loop.

#include <functional>

namespace fixture {

struct NodeVisitor {
  virtual void visit(unsigned node) = 0;
  virtual ~NodeVisitor() = default;
};

struct Pass {
  std::function<void(unsigned)> perNode;
};

}  // namespace fixture
