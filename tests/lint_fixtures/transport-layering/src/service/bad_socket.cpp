// Known-bad fixture: a service TU other than transport.cpp reaching for the
// raw socket API. Must trip exactly the transport-layering rule.
#include <sys/socket.h>

namespace dima::service {

int openSomething() { return socket(AF_INET, SOCK_STREAM, 0); }

}  // namespace dima::service
