// Bad fixture: a protocol policy TU reaching under the engine surface to
// the network substrate directly.
#include "src/net/network.hpp"

namespace fixture {

int protocolStep() { return 0; }

}  // namespace fixture
