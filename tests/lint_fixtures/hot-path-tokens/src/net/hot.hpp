#pragma once

// dimalint: hot-path
// Bad fixture: a hot-path-tagged file smuggling in a type-erased callback.

#include <functional>

namespace fixture {

struct Slot {
  std::function<void()> onDeliver;
};

}  // namespace fixture
