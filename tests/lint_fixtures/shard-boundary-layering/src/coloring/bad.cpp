// Bad fixture: a protocol policy TU naming the shard substrate and the
// partitioner directly instead of going through src/net/engine.hpp.
#include "src/graph/partition.hpp"
#include "src/net/shard.hpp"

namespace fixture {

int protocolStep() { return 0; }

}  // namespace fixture
