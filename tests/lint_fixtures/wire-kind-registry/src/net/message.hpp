#pragma once

// Bad fixture: `Rogue` was added to WireKind but never registered in a
// kKinds width table — the acceptance scenario for the wire-kind-registry
// rule ("adding a WireKind without a width must be flagged").

namespace fixture {

enum class WireKind { Invite, Rogue };

struct PairWire {
  static constexpr WireKind kKinds[] = {WireKind::Invite};
};

}  // namespace fixture
