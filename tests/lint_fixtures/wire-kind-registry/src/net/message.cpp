#include "src/net/message.hpp"

namespace fixture {

// `Rogue` is also missing from the name registry.
const char* wireKindName(WireKind kind) {
  if (kind == WireKind::Invite) return "invite";
  return "?";
}

}  // namespace fixture
