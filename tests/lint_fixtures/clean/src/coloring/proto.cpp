// A protocol policy TU that respects the layering: it talks to the engine
// surface, never to src/net/network.hpp directly.
#include "src/proto/engine.hpp"

namespace fixture {

int protocolStep() { return 0; }

}  // namespace fixture
