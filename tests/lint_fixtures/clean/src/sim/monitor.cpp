#include "src/net/trace.hpp"

namespace fixture {

void consume(TraceKind kind) {
  switch (kind) {
    case TraceKind::StateChoice:
      break;
    case TraceKind::NodeDone:
      break;
  }
}

}  // namespace fixture
