#pragma once

// Clean fixture: every WireKind enumerator has a kKinds width-table entry
// here and a wireKindName entry in message.cpp — no rule may fire.

namespace fixture {

enum class WireKind { Invite, Response };

struct PairWire {
  static constexpr WireKind kKinds[] = {WireKind::Invite, WireKind::Response};
};

}  // namespace fixture
