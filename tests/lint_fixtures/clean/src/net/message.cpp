#include "src/net/message.hpp"

namespace fixture {

const char* wireKindName(WireKind kind) {
  switch (kind) {
    case WireKind::Invite:
      return "invite";
    case WireKind::Response:
      return "response";
  }
  return "?";
}

}  // namespace fixture
