#pragma once

// dimalint: hot-path — a tagged file that keeps the zero-copy promise.
// The words std::function and new appear only in this comment, which the
// token scan strips before matching.

namespace fixture {

struct Slot {
  unsigned bits = 0;
};

inline unsigned renewed(Slot s) { return s.bits; }  // 'renew' != 'new'

}  // namespace fixture
