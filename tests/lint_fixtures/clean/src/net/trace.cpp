#include "src/net/trace.hpp"

namespace fixture {

const char* traceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::StateChoice:
      return "state-choice";
    case TraceKind::NodeDone:
      return "node-done";
  }
  return "?";
}

}  // namespace fixture
