#pragma once

namespace fixture {

enum class TraceKind { StateChoice, NodeDone };

}  // namespace fixture
