#include "src/service/wire.hpp"

namespace dima::service {

const char* serviceKindName(ServiceKind k) {
  switch (k) {
    case ServiceKind::Hello:
      return "Hello";
    case ServiceKind::Shutdown:
      return "Shutdown";
    default:
      return "?";  // Probe is missing: the rule reports it here too.
  }
}

}  // namespace dima::service
