#pragma once

// dimalint fixture: `Probe` was added to ServiceKind but never registered in
// a frame format's kKinds table (here) nor in the codec registry (wire.cpp).
// The service-kind-registry rule must flag both omissions.

#include <cstdint>

namespace dima::service {

enum class ServiceKind : std::uint8_t {
  Hello,
  Probe,
  Shutdown,
};

struct CommandFrame {
  static constexpr ServiceKind kKinds[] = {ServiceKind::Hello,
                                           ServiceKind::Shutdown};
};

}  // namespace dima::service
