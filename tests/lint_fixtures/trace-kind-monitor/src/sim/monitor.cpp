#include "src/net/trace.hpp"

namespace fixture {

void consume(TraceKind kind) {
  if (kind == TraceKind::StateChoice) return;
}

}  // namespace fixture
