#pragma once

// Bad fixture: `Rogue` is a TraceKind the InvariantMonitor never consumes
// and traceKindName never names.

namespace fixture {

enum class TraceKind { StateChoice, Rogue };

}  // namespace fixture
