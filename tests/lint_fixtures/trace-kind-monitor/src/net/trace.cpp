#include "src/net/trace.hpp"

namespace fixture {

const char* traceKindName(TraceKind kind) {
  if (kind == TraceKind::StateChoice) return "state-choice";
  return "?";
}

}  // namespace fixture
