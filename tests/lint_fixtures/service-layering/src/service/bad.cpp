// dimalint fixture: a service TU reaching below IncrementalRecolorer into
// the message substrate. The service-layering rule must flag the include.

#include "src/net/network.hpp"

namespace dima::service {

int touchSubstrateDirectly() { return 0; }

}  // namespace dima::service
