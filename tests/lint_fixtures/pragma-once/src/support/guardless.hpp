// Bad fixture: a header under src/ with no #pragma once guard.

namespace fixture {

struct Guardless {
  int value = 0;
};

}  // namespace fixture
