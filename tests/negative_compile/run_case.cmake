# Compile-twice harness for the negative compile cases. Invoked both at
# configure time (so a broken gate fails `cmake -B build` immediately) and
# as a ctest entry (so the red-by-construction check shows up in test runs):
#
#   cmake -DCXX=<compiler> -DSRC=<case.cpp> -DREPO_ROOT=<root>
#         [-DEXTRA_FLAGS=<semicolon-list>] -P run_case.cmake
#
# The case must compile WITHOUT -DDIMA_EXPECT_FAIL (the blessed usage is
# legal) and must FAIL to compile WITH it (the forbidden usage is rejected).
# Any other outcome is a FATAL_ERROR: a gate that never fires is worse than
# no gate, because it reads as enforcement.

foreach(var CXX SRC REPO_ROOT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_FLAGS)
  set(EXTRA_FLAGS "")
endif()

set(base_cmd "${CXX}" -std=c++20 -fsyntax-only "-I${REPO_ROOT}" ${EXTRA_FLAGS})

execute_process(
  COMMAND ${base_cmd} "${SRC}"
  RESULT_VARIABLE ok_result
  OUTPUT_VARIABLE ok_out ERROR_VARIABLE ok_out)
if(NOT ok_result EQUAL 0)
  message(FATAL_ERROR
    "negative-compile case ${SRC}: the ALLOWED variant failed to compile "
    "— the blessed API broke:\n${ok_out}")
endif()

execute_process(
  COMMAND ${base_cmd} -DDIMA_EXPECT_FAIL "${SRC}"
  RESULT_VARIABLE fail_result
  OUTPUT_VARIABLE fail_out ERROR_VARIABLE fail_out)
if(fail_result EQUAL 0)
  message(FATAL_ERROR
    "negative-compile case ${SRC}: the FORBIDDEN variant compiled — the "
    "gate is not enforcing anything")
endif()

get_filename_component(case_name "${SRC}" NAME_WE)
message(STATUS "negative-compile ${case_name}: allowed=ok forbidden=rejected")
