// Negative compile case: the WireKind width registry is exhaustive by
// static_assert. `wireKindsRegistered<Formats...>(kWireKindCount)` is true
// only when every enumerator appears in some listed format's `kKinds`
// table; claiming coverage with a partial format set must fail to compile —
// the same failure a new WireKind without a width entry would produce in
// src/net/message.hpp itself.
//
// Compiled twice by the harness (tests/negative_compile/run_case.cmake):
// without DIMA_EXPECT_FAIL it must compile; with it, it must not.

#include "src/net/message.hpp"

namespace n = dima::net;

// The full format set covers every kind — this mirrors the registry assert
// in message.hpp and must always hold.
static_assert(
    n::wireKindsRegistered<n::PairWire, n::ColorWire, n::TentativeColorWire>(
        n::kWireKindCount),
    "full format set must register every WireKind");

#ifdef DIMA_EXPECT_FAIL
// PairWire alone carries no Tentative/Abort/ColorAnnounce: the registry
// check must reject it.
static_assert(n::wireKindsRegistered<n::PairWire>(n::kWireKindCount),
              "partial format set must NOT satisfy the registry");
#endif

int main() { return 0; }
