// Negative compile case: the CommitHalves single-writer discipline is
// type-enforced. An `EndpointHalf` can only be minted through the two
// blessed factories (`ownedBy` for undirected edges, `arcEnd` for arcs), so
// the historical bug class — indexing the partner's half with a hand-rolled
// bool — no longer compiles.
//
// Compiled twice by the harness (tests/negative_compile/run_case.cmake):
// without DIMA_EXPECT_FAIL it must compile; with it, it must not.

#include <cstdint>

#include "src/automata/core.hpp"

int main() {
  using dima::automata::CommitHalves;
  using dima::automata::EndpointHalf;

  CommitHalves<int> halves(4, -1);
  const dima::net::NodeId me = 3;
  const dima::net::NodeId partner = 1;
  halves.half(0, EndpointHalf::ownedBy(me, partner)) = 7;
  halves.half(1, EndpointHalf::arcEnd(/*incoming=*/true)) = 9;

#ifdef DIMA_EXPECT_FAIL
  // A raw bool is not an endpoint identity: this selected the *partner's*
  // slot whenever the comparison was written backwards. The EndpointHalf
  // constructor is private, so this must not compile.
  halves.half(2, true) = 11;
#endif

  return halves.merged(0) == 7 ? 0 : 1;
}
