// Negative compile case: `WireLength` (src/service/wire_length.hpp) makes
// the PR-9 bug class — arithmetic on a wire-controlled length before its
// bounds check — unrepresentable. The blessed path extracts the raw value
// through `below(limit)`, which forces the comparison; multiplying the
// length directly must hit the deleted operator and fail to compile.
//
// Compiled twice by the harness (tests/negative_compile/run_case.cmake):
// without DIMA_EXPECT_FAIL it must compile; with it, it must not.

#include <cstdint>

#include "src/service/wire_length.hpp"

namespace s = dima::service;

std::uint64_t blessedDecode(std::uint64_t wireCount,
                            std::uint64_t remainingBytes) {
  const s::WireLength samples(wireCount);
  // The one exit: divide the budget, never multiply the count.
  const auto checked = samples.below(remainingBytes / 8);
  return checked ? *checked : 0;
}

static_assert(s::WireLength(4).below(8).value() == 4,
              "below() passes a length inside the limit");
static_assert(!s::WireLength(9).below(8).has_value(),
              "below() rejects a length beyond the limit");

#ifdef DIMA_EXPECT_FAIL
// The original bug shape: `samples * 8` can wrap the comparison type. The
// deleted operator* must reject it at compile time.
std::uint64_t forgedDecode(std::uint64_t wireCount) {
  const s::WireLength samples(wireCount);
  return (samples * 8).raw();
}
#endif

int main() { return 0; }
