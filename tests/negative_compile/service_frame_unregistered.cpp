// Negative compile case: the service wire format's kind registry is
// direction-checked at compile time. `makeFrame<K, Format>` static_asserts
// that `K` appears in `Format::kKinds`, so building a *command* frame with
// a reply-only kind (the classic copy-paste protocol bug) is a build
// error, not a mysterious `Error{BadFrame}` at runtime.
//
// Compiled twice by the harness (tests/negative_compile/run_case.cmake):
// without DIMA_EXPECT_FAIL it must compile; with it, it must not.

#include "src/service/wire.hpp"

int main() {
  using dima::service::CommandFrame;
  using dima::service::ReplyFrame;
  using dima::service::ServiceKind;
  using dima::service::makeFrame;

  // Blessed: commands carry command kinds, replies carry reply kinds.
  const CommandFrame cmd = makeFrame<ServiceKind::Flush, CommandFrame>();
  const ReplyFrame reply = makeFrame<ServiceKind::Ack, ReplyFrame>();

#ifdef DIMA_EXPECT_FAIL
  // `Ack` is a reply kind; CommandFrame::kKinds does not register it, so
  // this frame cannot be constructed.
  const CommandFrame bogus = makeFrame<ServiceKind::Ack, CommandFrame>();
  (void)bogus;
#endif

  return cmd.kind == ServiceKind::Flush &&
                 reply.kind == ServiceKind::Ack
             ? 0
             : 1;
}
