// Negative compile case (clang only): reading a DIMA_GUARDED_BY field
// without holding its mutex is a compile error under
// `-Wthread-safety -Werror=thread-safety`. The harness skips this case on
// compilers without the capability analysis (gcc expands the annotation
// macros to nothing).
//
// Compiled twice by the harness (tests/negative_compile/run_case.cmake):
// without DIMA_EXPECT_FAIL it must compile; with it, it must not.

#include "src/support/annotations.hpp"
#include "src/support/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    dima::support::MutexLock lock(mutex_);
    balance_ += amount;
  }

  int balanceLocked() {
    dima::support::MutexLock lock(mutex_);
    return balance_;
  }

#ifdef DIMA_EXPECT_FAIL
  // No lock held: clang's thread-safety analysis must reject this read.
  int balanceRacy() { return balance_; }
#endif

 private:
  dima::support::Mutex mutex_;
  int balance_ DIMA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(3);
  return account.balanceLocked() == 3 ? 0 : 1;
}
