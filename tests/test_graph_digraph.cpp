#include "src/graph/digraph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

TEST(Digraph, SymmetricClosureCounts) {
  support::Rng rng(1);
  const Graph g = erdosRenyiGnm(20, 50, rng);
  const Digraph d(g);
  EXPECT_EQ(d.numVertices(), 20u);
  EXPECT_EQ(d.numArcs(), 100u);
}

TEST(Digraph, ArcEndpointsMatchEdge) {
  Graph g(3, {Edge{0, 2}, Edge{1, 2}});
  const Digraph d(g);
  for (ArcId a = 0; a < d.numArcs(); ++a) {
    const Arc arc = d.arc(a);
    const Edge& e = g.edge(arc.edge);
    EXPECT_TRUE((arc.from == e.u && arc.to == e.v) ||
                (arc.from == e.v && arc.to == e.u));
  }
}

TEST(Digraph, ReverseIsInvolutionWithSwappedEndpoints) {
  support::Rng rng(2);
  const Digraph d(erdosRenyiGnm(15, 30, rng));
  for (ArcId a = 0; a < d.numArcs(); ++a) {
    const ArcId r = Digraph::reverse(a);
    EXPECT_NE(r, a);
    EXPECT_EQ(Digraph::reverse(r), a);
    EXPECT_EQ(d.arc(a).from, d.arc(r).to);
    EXPECT_EQ(d.arc(a).to, d.arc(r).from);
  }
}

TEST(Digraph, FindArcDirectionality) {
  Graph g(2, {Edge{0, 1}});
  const Digraph d(g);
  const ArcId fwd = d.findArc(0, 1);
  const ArcId bwd = d.findArc(1, 0);
  ASSERT_NE(fwd, kNoArc);
  ASSERT_NE(bwd, kNoArc);
  EXPECT_EQ(Digraph::reverse(fwd), bwd);
  EXPECT_EQ(d.arc(fwd).from, 0u);
  EXPECT_EQ(d.arc(bwd).from, 1u);
  EXPECT_EQ(d.findArc(0, 0), kNoArc);
}

TEST(Digraph, OutArcsLeaveTheVertexAndCoverAllArcs) {
  support::Rng rng(3);
  const Digraph d(erdosRenyiGnm(25, 60, rng));
  std::set<ArcId> seen;
  for (VertexId v = 0; v < d.numVertices(); ++v) {
    EXPECT_EQ(d.outArcs(v).size(), d.outDegree(v));
    for (ArcId a : d.outArcs(v)) {
      EXPECT_EQ(d.arc(a).from, v);
      EXPECT_TRUE(seen.insert(a).second) << "arc listed twice";
    }
  }
  EXPECT_EQ(seen.size(), d.numArcs());
}

TEST(Digraph, EdgeArcIdScheme) {
  Graph g(3, {Edge{0, 1}, Edge{1, 2}});
  const Digraph d(g);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const ArcId f = Digraph::arcOfEdgeForward(e);
    const ArcId b = Digraph::arcOfEdgeBackward(e);
    EXPECT_EQ(f, 2 * e);
    EXPECT_EQ(b, 2 * e + 1);
    EXPECT_EQ(d.arc(f).from, g.edge(e).u);
    EXPECT_EQ(d.arc(b).from, g.edge(e).v);
  }
}

TEST(Digraph, EmptyAndIsolated) {
  const Digraph d(Graph(4));
  EXPECT_EQ(d.numArcs(), 0u);
  EXPECT_TRUE(d.outArcs(2).empty());
}

TEST(DigraphDeathTest, BadIdsRejected) {
  const Digraph d(Graph(2, {Edge{0, 1}}));
  EXPECT_DEATH(d.arc(2), "out of range");
  EXPECT_DEATH(d.outArcs(5), "out of range");
}

}  // namespace
}  // namespace dima::graph
