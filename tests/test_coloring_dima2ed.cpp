#include "src/coloring/dima2ed.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/net/trace.hpp"

#include <set>

namespace dima::coloring {
namespace {

graph::Digraph digraphOf(const graph::Graph& g) { return graph::Digraph(g); }

TEST(Dima2Ed, TrivialGraphs) {
  const ArcColoringResult empty = colorArcsDima2Ed(digraphOf(graph::Graph(0)));
  EXPECT_TRUE(empty.metrics.converged);
  const ArcColoringResult isolated =
      colorArcsDima2Ed(digraphOf(graph::Graph(5)));
  EXPECT_TRUE(isolated.metrics.converged);
  EXPECT_EQ(isolated.metrics.computationRounds, 0u);
}

TEST(Dima2Ed, SingleEdgeBothDirectionsColored) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  const graph::Digraph d(g);
  const ArcColoringResult result = colorArcsDima2Ed(d, {.seed = 4});
  EXPECT_TRUE(result.metrics.converged);
  ASSERT_EQ(result.colors.size(), 2u);
  EXPECT_NE(result.colors[0], kNoColor);
  EXPECT_NE(result.colors[1], kNoColor);
  // Antiparallel twins conflict, so the two directions differ.
  EXPECT_NE(result.colors[0], result.colors[1]);
  EXPECT_TRUE(verifyStrongArcColoring(d, result.colors));
}

TEST(Dima2Ed, StrictModeAlwaysValidOnSmallFamilies) {
  support::Rng rng(2);
  const graph::Graph graphs[] = {
      graph::cycle(8),
      graph::path(9),
      graph::star(7),
      graph::complete(6),
      graph::grid(4, 5),
      graph::erdosRenyiAvgDegree(50, 4.0, rng),
  };
  for (const graph::Graph& g : graphs) {
    const graph::Digraph d(g);
    const ArcColoringResult result = colorArcsDima2Ed(d, {.seed = 5});
    EXPECT_TRUE(result.metrics.converged)
        << "n=" << g.numVertices() << " m=" << g.numEdges();
    const Verdict verdict = verifyStrongArcColoring(d, result.colors);
    EXPECT_TRUE(verdict.valid) << verdict.reason;
  }
}

TEST(Dima2Ed, DeterministicInSeed) {
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(40, 4.0, rng);
  const graph::Digraph d(g);
  const ArcColoringResult a = colorArcsDima2Ed(d, {.seed = 99});
  const ArcColoringResult b = colorArcsDima2Ed(d, {.seed = 99});
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.metrics.computationRounds, b.metrics.computationRounds);
}

TEST(Dima2Ed, ThreadedExecutorMatchesSerial) {
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 5.0, rng);
  const graph::Digraph d(g);
  Dima2EdOptions serial;
  serial.seed = 123;
  const ArcColoringResult a = colorArcsDima2Ed(d, serial);

  support::ThreadPool pool(4);
  Dima2EdOptions pooled;
  pooled.seed = 123;
  pooled.pool = &pool;
  const ArcColoringResult b = colorArcsDima2Ed(d, pooled);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(Dima2Ed, StrictUsesFiveCommRoundsPerCycle) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(30, 4.0, rng);
  const ArcColoringResult strict =
      colorArcsDima2Ed(digraphOf(g), {.seed = 6});
  EXPECT_EQ(strict.metrics.commRounds,
            5 * strict.metrics.computationRounds);
  Dima2EdOptions paperOptions;
  paperOptions.seed = 6;
  paperOptions.mode = Dima2EdMode::Paper;
  const ArcColoringResult paper = colorArcsDima2Ed(digraphOf(g), paperOptions);
  EXPECT_EQ(paper.metrics.commRounds, 3 * paper.metrics.computationRounds);
}

TEST(Dima2Ed, PaperModeColoringsAreCompleteButMayConflict) {
  // The pseudo-code-faithful mode terminates and colors everything; the
  // same-round holes (DESIGN.md §2) may leave residual conflicts, which the
  // validator counts — on small dense graphs they appear regularly.
  support::Rng rng(6);
  std::size_t totalConflicts = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(60, 6.0, rng);
    const graph::Digraph d(g);
    Dima2EdOptions options;
    options.seed = seed;
    options.mode = Dima2EdMode::Paper;
    const ArcColoringResult result = colorArcsDima2Ed(d, options);
    EXPECT_TRUE(result.metrics.converged);
    EXPECT_TRUE(result.complete());
    totalConflicts += countStrongConflicts(d, result.colors);
  }
  // Not asserted to be non-zero per-seed (probabilistic), but across five
  // dense runs the holes essentially always manifest.
  EXPECT_GT(totalConflicts, 0u)
      << "paper mode unexpectedly produced flawless colorings — if this "
         "starts passing, the faithful mode no longer matches the paper";
}

TEST(Dima2Ed, StrictModeNeverConflictsWhereItMatters) {
  support::Rng rng(7);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(60, 6.0, rng);
    const graph::Digraph d(g);
    const ArcColoringResult result = colorArcsDima2Ed(d, {.seed = seed});
    ASSERT_TRUE(result.metrics.converged);
    EXPECT_EQ(countStrongConflicts(d, result.colors), 0u);
  }
}

TEST(Dima2Ed, LowestIndexPolicyCanLivelock) {
  // DESIGN.md §2: the literal lowest-index rule can propose a color the
  // responder can never accept, forever. We cap the rounds and accept
  // either outcome, but safety must hold on whatever was colored.
  support::Rng rng(8);
  const graph::Graph g = graph::erdosRenyiAvgDegree(50, 6.0, rng);
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = 3;
  options.policy = ColorPolicy::LowestIndex;
  options.maxCycles = 300;
  const ArcColoringResult result = colorArcsDima2Ed(d, options);
  EXPECT_TRUE(verifyStrongArcColoring(d, result.colors,
                                      !result.metrics.converged));
}

TEST(Dima2Ed, TraceRecordsArcEvents) {
  net::TraceLog trace;
  trace.enable();
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2}});
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = 10;
  options.trace = &trace;
  const ArcColoringResult result = colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  std::size_t colored = 0;
  for (const net::TraceEvent& e : trace.events()) {
    if (e.kind == net::TraceKind::EdgeColored) ++colored;
  }
  // Each arc commit is recorded at both endpoints: 2 per arc.
  EXPECT_EQ(colored, 2 * d.numArcs());
}

TEST(Dima2Ed, ReliableRunsNeverHalfCommit) {
  support::Rng rng(9);
  const graph::Graph g = graph::erdosRenyiAvgDegree(40, 4.0, rng);
  const ArcColoringResult result =
      colorArcsDima2Ed(graph::Digraph(g), {.seed = 12});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(result.halfCommitted.empty());
}

TEST(Dima2Ed, NodeLocalSafetySurvivesMessageDrops) {
  // Strong-coloring correctness *depends* on the E-state gossip arriving:
  // a dropped announcement leaves a neighbor's forbidden set stale, so
  // distance-2 conflicts can appear under message loss (unlike MaDEC, which
  // only needs each endpoint's own knowledge). What survives is node-local
  // safety: among arcs whose color both endpoints agreed on, no two arcs
  // incident to the same vertex share a color.
  support::Rng rng(9);
  const graph::Graph g = graph::erdosRenyiAvgDegree(40, 4.0, rng);
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = 12;
  options.faults.dropProbability = 0.15;
  options.maxCycles = 500;
  const ArcColoringResult result = colorArcsDima2Ed(d, options);

  std::vector<Color> agreed = result.colors;
  for (graph::ArcId a : result.halfCommitted) agreed[a] = kNoColor;
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    std::set<Color> seen;
    for (graph::ArcId out : d.outArcs(v)) {
      for (graph::ArcId a : {out, graph::Digraph::reverse(out)}) {
        if (agreed[a] == kNoColor) continue;
        EXPECT_TRUE(seen.insert(agreed[a]).second)
            << "vertex " << v << " sees agreed color " << agreed[a]
            << " twice";
      }
    }
  }
}

TEST(Dima2EdDeathTest, InvalidBiasRejected) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  Dima2EdOptions options;
  options.invitorBias = 1.0;
  EXPECT_DEATH(colorArcsDima2Ed(graph::Digraph(g), options), "bias");
}

}  // namespace
}  // namespace dima::coloring
