/// \file test_integration.cpp
/// Cross-module end-to-end scenarios: each test exercises a realistic user
/// pipeline spanning generators, protocols, validators, I/O and the CLI —
/// the flows the examples demonstrate, held to assertions.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/automata/mis.hpp"
#include "src/baselines/greedy.hpp"
#include "src/cli/commands.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/coloring/vertex_coloring.hpp"
#include "src/experiments/replot.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/graph/metrics.hpp"

namespace dima {
namespace {

TEST(Integration, TdmaSchedulePipeline) {
  // Generate a sensor network, negotiate slots with MaDEC, then simulate a
  // TDMA superframe and assert the scheduling invariant per slot.
  support::Rng rng(1);
  const graph::Graph g = graph::erdosRenyiAvgDegree(70, 5.0, rng);
  const auto schedule = coloring::colorEdgesMadec(g, {.seed = 2});
  ASSERT_TRUE(schedule.metrics.converged);
  ASSERT_TRUE(coloring::verifyEdgeColoring(g, schedule.colors));

  coloring::Color maxSlot = 0;
  for (coloring::Color c : schedule.colors) maxSlot = std::max(maxSlot, c);
  std::size_t served = 0;
  for (coloring::Color slot = 0; slot <= maxSlot; ++slot) {
    std::vector<bool> busy(g.numVertices(), false);
    for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
      if (schedule.colors[e] != slot) continue;
      const graph::Edge& link = g.edge(e);
      ASSERT_FALSE(busy[link.u]) << "node collision in slot " << slot;
      ASSERT_FALSE(busy[link.v]) << "node collision in slot " << slot;
      busy[link.u] = busy[link.v] = true;
      ++served;
    }
  }
  EXPECT_EQ(served, g.numEdges());
}

TEST(Integration, ChannelAssignmentPipeline) {
  // Unit-disk radio network → strong coloring → per-radio channel schedule
  // where every channel within interference range is distinct.
  support::Rng rng(2);
  const graph::GeometricGraph deployment =
      graph::randomGeometric(40, 0.25, rng);
  const graph::Digraph network(deployment.graph);
  if (network.numArcs() == 0) GTEST_SKIP() << "degenerate deployment";
  const auto assignment = coloring::colorArcsDima2Ed(network, {.seed = 3});
  ASSERT_TRUE(assignment.metrics.converged);
  ASSERT_TRUE(coloring::verifyStrongArcColoring(network, assignment.colors));
  // Every radio's incident channels (tx + rx) are pairwise distinct — a
  // consequence of the strong coloring that the MAC layer relies on.
  for (graph::VertexId v = 0; v < network.numVertices(); ++v) {
    std::set<coloring::Color> channels;
    for (graph::ArcId out : network.outArcs(v)) {
      EXPECT_TRUE(channels.insert(assignment.colors[out]).second);
      EXPECT_TRUE(
          channels.insert(assignment.colors[graph::Digraph::reverse(out)])
              .second);
    }
  }
}

TEST(Integration, GraphFileToFigureCsvToReplot) {
  // Disk round-trip across three subsystems: graph I/O → CLI coloring with
  // colors file → validator; then a figure CSV → replot.
  const std::string dir = ::testing::TempDir();
  const std::string graphPath = dir + "integration_graph.txt";
  support::Rng rng(3);
  const graph::Graph g = graph::wattsStrogatz(48, 6, 0.3, rng);
  ASSERT_TRUE(graph::saveEdgeList(g, graphPath));

  std::ostringstream out, err;
  cli::Args colorArgs({"color", "--input", graphPath, "--algo",
                       "misra-gries"});
  EXPECT_EQ(cli::runCommand(colorArgs, out, err), 0) << err.str();

  cli::Args figArgs({"figure", "--id", "4", "--runs", "1", "--csv-out",
                     dir + "integration_fig.csv"});
  std::ostringstream out2, err2;
  EXPECT_EQ(cli::runCommand(figArgs, out2, err2), 0) << err2.str();
  std::ifstream csv(dir + "integration_fig.csv");
  std::ostringstream csvText;
  csvText << csv.rdbuf();
  const exp::ReplotResult replot = exp::replotFigureCsv(csvText.str());
  EXPECT_TRUE(replot.ok) << replot.error;
  EXPECT_EQ(replot.rows, 6u);  // 6 configs × 1 run

  std::remove(graphPath.c_str());
  std::remove((dir + "integration_fig.csv").c_str());
}

TEST(Integration, MisThenColorRemainder) {
  // Compose two automaton-family algorithms: take an MIS, then vertex-color
  // the whole graph and check the MIS members could all share one color
  // class only if independent — cross-validating both validators.
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(90, 6.0, rng);
  const auto mis = automata::maximalIndependentSet(g, 5);
  ASSERT_TRUE(mis.converged);
  ASSERT_TRUE(automata::isMaximalIndependentSet(g, mis.inSet));

  const auto coloring = coloring::colorVerticesDistributed(g, 6);
  ASSERT_TRUE(coloring.converged);
  ASSERT_TRUE(coloring::isProperVertexColoring(g, coloring.colors));

  // Recolor MIS members with a fresh color: still proper, because an
  // independent set can always share one class.
  std::vector<coloring::Color> recolored = coloring.colors;
  const auto fresh = static_cast<coloring::Color>(g.maxDegree() + 2);
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    if (mis.inSet[v]) recolored[v] = fresh;
  }
  EXPECT_TRUE(coloring::isProperVertexColoring(g, recolored));
}

TEST(Integration, GreedySeedsMatchDistributedQualityEnvelope) {
  // Run the same workload through the sequential and distributed pipelines
  // and assert the documented quality envelope holds simultaneously.
  support::Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    const graph::Graph g = graph::barabasiAlbert(120, 3, 1.0, rng);
    const auto distributed =
        coloring::colorEdgesMadec(g, {.seed = 10 + (unsigned)i});
    const auto sequential = baselines::greedyEdgeColoring(g);
    ASSERT_TRUE(coloring::verifyEdgeColoring(g, distributed.colors));
    ASSERT_TRUE(coloring::verifyEdgeColoring(g, sequential.colors));
    EXPECT_LE(distributed.colorsUsed(), sequential.colorsUsed + 2);
    EXPECT_GE(distributed.colorsUsed(), g.maxDegree());
  }
}

}  // namespace
}  // namespace dima
