/// \file test_bitplane_parity.cpp
/// Engine-parity pins for the bit-plane automaton engine
/// (src/automata/bitplane.hpp, src/coloring/bitplane_engines.hpp): on the
/// fault-free model, `EngineKind::BitPlane` must be observably invisible —
/// bit-identical colors, `Counters`, and TraceLog event streams versus the
/// reference engine, over ER / scale-free / small-world topologies and
/// worker counts {1, 2, 8}. The grid is what lets every downstream
/// consumer (golden pins, invariant monitor, experiments) trust the fast
/// engine for free; a single mismatched bit here means the replay drifted
/// and must be fixed, never re-pinned.
///
/// The ISA dispatch contract rides along: every compiled kernel path must
/// produce the same bits, so the golden pins are re-checked under each
/// supported path (CI also forces paths process-wide via
/// DIMA_BITPLANE_ISA).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/automata/bitplane.hpp"
#include "src/automata/discovery.hpp"
#include "src/coloring/bitplane_engines.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/digraph.hpp"
#include "src/graph/generators.hpp"
#include "src/net/trace.hpp"
#include "src/sim/monitor.hpp"
#include "src/support/thread_pool.hpp"

namespace dima {
namespace {

namespace bp = automata::bitplane;

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};

graph::Graph erGraph() {
  support::Rng rng(21);
  return graph::erdosRenyiAvgDegree(400, 8.0, rng);
}
graph::Graph scaleFreeGraph() {
  support::Rng rng(22);
  return graph::barabasiAlbert(400, 4, 1.0, rng);
}
graph::Graph smallWorldGraph() {
  support::Rng rng(23);
  return graph::wattsStrogatz(300, 6, 0.1, rng);
}
graph::Graph goldenGraph() {
  support::Rng rng(0xfeed);
  return graph::erdosRenyiAvgDegree(50, 6.0, rng);
}

std::vector<graph::Graph> parityGrid() {
  std::vector<graph::Graph> grid;
  grid.push_back(erGraph());
  grid.push_back(scaleFreeGraph());
  grid.push_back(smallWorldGraph());
  return grid;
}

void expectSameMetrics(const coloring::RunMetrics& a,
                       const coloring::RunMetrics& b, std::size_t workers) {
  EXPECT_EQ(a.computationRounds, b.computationRounds) << workers << " workers";
  EXPECT_EQ(a.commRounds, b.commRounds) << workers << " workers";
  EXPECT_EQ(a.broadcasts, b.broadcasts) << workers << " workers";
  EXPECT_EQ(a.messagesDelivered, b.messagesDelivered) << workers << " workers";
  EXPECT_EQ(a.bitsDelivered, b.bitsDelivered) << workers << " workers";
  EXPECT_EQ(a.maxMessageBits, b.maxMessageBits) << workers << " workers";
  EXPECT_EQ(a.converged, b.converged) << workers << " workers";
}

TEST(BitPlaneParity, MadecMatchesReferenceAcrossGridAndWorkers) {
  for (const graph::Graph& g : parityGrid()) {
    coloring::MadecOptions reference;
    reference.seed = 0xb17b17;
    const auto ref = coloring::colorEdgesMadec(g, reference);
    ASSERT_TRUE(ref.metrics.converged);
    for (const std::size_t workers : kWorkerCounts) {
      support::ThreadPool pool(workers);
      coloring::MadecOptions options = reference;
      options.engine = net::EngineKind::BitPlane;
      options.pool = workers == 1 ? nullptr : &pool;
      const auto run = coloring::colorEdgesMadec(g, options);
      EXPECT_EQ(ref.colors, run.colors) << workers << " workers";
      EXPECT_EQ(ref.halfCommitted, run.halfCommitted) << workers;
      expectSameMetrics(ref.metrics, run.metrics, workers);
    }
  }
}

TEST(BitPlaneParity, Dima2EdMatchesReferenceBothModes) {
  for (const graph::Graph& g : parityGrid()) {
    const graph::Digraph d(g);
    for (const auto mode :
         {coloring::Dima2EdMode::Strict, coloring::Dima2EdMode::Paper}) {
      coloring::Dima2EdOptions reference;
      reference.seed = 0xb17d2;
      reference.mode = mode;
      const auto ref = coloring::colorArcsDima2Ed(d, reference);
      ASSERT_TRUE(ref.metrics.converged);
      for (const std::size_t workers : kWorkerCounts) {
        support::ThreadPool pool(workers);
        coloring::Dima2EdOptions options = reference;
        options.engine = net::EngineKind::BitPlane;
        options.pool = workers == 1 ? nullptr : &pool;
        const auto run = coloring::colorArcsDima2Ed(d, options);
        EXPECT_EQ(ref.colors, run.colors)
            << workers << " workers, mode " << static_cast<int>(mode);
        EXPECT_EQ(ref.halfCommitted, run.halfCommitted) << workers;
        expectSameMetrics(ref.metrics, run.metrics, workers);
      }
    }
  }
}

TEST(BitPlaneParity, LowestIndexPolicyMatchesReference) {
  const graph::Digraph d(erGraph());
  coloring::Dima2EdOptions reference;
  reference.policy = coloring::ColorPolicy::LowestIndex;
  reference.maxCycles = 4000;
  const auto ref = coloring::colorArcsDima2Ed(d, reference);
  coloring::Dima2EdOptions options = reference;
  options.engine = net::EngineKind::BitPlane;
  const auto run = coloring::colorArcsDima2Ed(d, options);
  EXPECT_EQ(ref.colors, run.colors);
  expectSameMetrics(ref.metrics, run.metrics, 1);
}

TEST(BitPlaneParity, DiscoveryMatchesReferenceAcrossWorkers) {
  for (const graph::Graph& g : parityGrid()) {
    const auto ref = automata::maximalMatching(g, 0xd15c0);
    ASSERT_TRUE(ref.converged);
    for (const std::size_t workers : kWorkerCounts) {
      support::ThreadPool pool(workers);
      net::EngineOptions options;
      options.engine = net::EngineKind::BitPlane;
      options.pool = workers == 1 ? nullptr : &pool;
      const auto run = automata::maximalMatching(g, 0xd15c0, 0.5, options);
      EXPECT_EQ(ref.matching.edges(), run.matching.edges()) << workers;
      EXPECT_EQ(ref.rounds, run.rounds) << workers;
      EXPECT_EQ(ref.stats.activeNodeRounds, run.stats.activeNodeRounds);
      EXPECT_EQ(ref.stats.matchedNodeRounds, run.stats.matchedNodeRounds);
      EXPECT_EQ(ref.stats.pairsPerRound, run.stats.pairsPerRound);
    }
  }
}

// --- Trace parity: every intermediate event, not just final outputs.

void expectSameTrace(const net::TraceLog& a, const net::TraceLog& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const net::TraceEvent& ea = a.events()[i];
    const net::TraceEvent& eb = b.events()[i];
    ASSERT_TRUE(ea.cycle == eb.cycle && ea.node == eb.node &&
                ea.kind == eb.kind && ea.a == eb.a && ea.b == eb.b)
        << "event " << i << ": (" << ea.cycle << "," << ea.node << ","
        << static_cast<int>(ea.kind) << "," << ea.a << "," << ea.b
        << ") vs (" << eb.cycle << "," << eb.node << ","
        << static_cast<int>(eb.kind) << "," << eb.a << "," << eb.b << ")";
  }
}

TEST(BitPlaneParity, MadecTraceStreamIsIdentical) {
  const graph::Graph g = goldenGraph();
  net::TraceLog refLog;
  refLog.enable();
  coloring::MadecOptions reference{.seed = 42};
  reference.trace = &refLog;
  (void)coloring::colorEdgesMadec(g, reference);

  net::TraceLog bpLog;
  bpLog.enable();
  coloring::MadecOptions options{.seed = 42};
  options.trace = &bpLog;
  options.engine = net::EngineKind::BitPlane;
  (void)coloring::colorEdgesMadec(g, options);
  expectSameTrace(refLog, bpLog);
}

TEST(BitPlaneParity, Dima2EdExtendedTraceStreamIsIdentical) {
  const graph::Digraph d(goldenGraph());
  net::TraceLog refLog;
  refLog.enable();
  refLog.enableExtended();  // TentativeSet events must replay too
  coloring::Dima2EdOptions reference{.seed = 42};
  reference.trace = &refLog;
  (void)coloring::colorArcsDima2Ed(d, reference);

  net::TraceLog bpLog;
  bpLog.enable();
  bpLog.enableExtended();
  coloring::Dima2EdOptions options{.seed = 42};
  options.trace = &bpLog;
  options.engine = net::EngineKind::BitPlane;
  (void)coloring::colorArcsDima2Ed(d, options);
  expectSameTrace(refLog, bpLog);
}

// --- Golden pins, engine-forced: the exact values test_golden.cpp pins
// for the reference engine must fall out of the bit-plane engine too.

TEST(BitPlaneParity, MadecGoldenRunIsPinned) {
  coloring::MadecOptions options{.seed = 1234};
  options.engine = net::EngineKind::BitPlane;
  const auto result = coloring::colorEdgesMadec(goldenGraph(), options);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 30u);
  EXPECT_EQ(result.colorsUsed(), 12u);
  EXPECT_EQ(result.colors[0], 7);
  EXPECT_EQ(result.colors[5], 6);
  EXPECT_EQ(result.metrics.commRounds, 90u);
  EXPECT_EQ(result.metrics.broadcasts, 831u);
  EXPECT_EQ(result.metrics.messagesDelivered, 5589u);
  EXPECT_EQ(result.metrics.bitsDelivered, 42849u);
  EXPECT_EQ(result.metrics.maxMessageBits, 12u);
}

TEST(BitPlaneParity, Dima2EdGoldenRunIsPinned) {
  const graph::Digraph d(goldenGraph());
  coloring::Dima2EdOptions options{.seed = 1234};
  options.engine = net::EngineKind::BitPlane;
  const auto result = coloring::colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 156u);
  EXPECT_EQ(result.colorsUsed(), 78u);
  EXPECT_EQ(result.colors[0], 20);
  EXPECT_EQ(result.metrics.commRounds, 780u);
  EXPECT_EQ(result.metrics.broadcasts, 3643u);
  EXPECT_EQ(result.metrics.messagesDelivered, 23712u);
  EXPECT_EQ(result.metrics.bitsDelivered, 307388u);
  EXPECT_EQ(result.metrics.maxMessageBits, 20u);
}

// --- ISA dispatch: every compiled path must produce the same bits.

TEST(BitPlaneParity, GoldenPinsHoldUnderEveryCompiledIsaPath) {
  const bp::Isa original = bp::activeIsa();
  for (const bp::Isa isa : {bp::Isa::Scalar, bp::Isa::Avx2, bp::Isa::Avx512}) {
    if (!bp::isaSupported(isa)) continue;
    bp::setIsa(isa);
    coloring::MadecOptions options{.seed = 1234};
    options.engine = net::EngineKind::BitPlane;
    const auto result = coloring::colorEdgesMadec(goldenGraph(), options);
    EXPECT_EQ(result.metrics.computationRounds, 30u) << bp::isaName(isa);
    EXPECT_EQ(result.colorsUsed(), 12u) << bp::isaName(isa);
    EXPECT_EQ(result.metrics.bitsDelivered, 42849u) << bp::isaName(isa);
  }
  bp::setIsa(original);
}

// --- The invariant monitor consumes bit-plane traces like any other run.

TEST(BitPlaneParity, MonitoredBitPlaneRunIsClean) {
  const graph::Graph g = goldenGraph();
  sim::MonitorOptions monitorOptions;
  monitorOptions.semantics = sim::Semantics::ProperEdge;
  monitorOptions.paletteBound = 2 * g.maxDegree() - 1;
  sim::InvariantMonitor monitor(g, monitorOptions);
  net::TraceLog log;
  monitor.attach(log);
  coloring::MadecOptions options{.seed = 1234};
  options.trace = &log;
  options.engine = net::EngineKind::BitPlane;
  const auto result = coloring::colorEdgesMadec(g, options);
  monitor.finish();
  log.setSink({});
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(monitor.ok()) << monitor.report();
  EXPECT_GT(monitor.eventsSeen(), 0u);
}

// --- Degenerate shapes: isolated vertices, empty graphs, single edges.

TEST(BitPlaneParity, DegenerateGraphsMatchReference) {
  std::vector<graph::Graph> shapes;
  shapes.emplace_back(0);  // empty
  shapes.emplace_back(5);  // all isolated
  shapes.emplace_back(2, std::vector<graph::Edge>{{0, 1}});  // single edge
  shapes.emplace_back(6, std::vector<graph::Edge>{
                             {0, 1}, {0, 2}, {0, 3}, {0, 4}});  // star + lone
  for (const graph::Graph& g : shapes) {
    const auto ref = coloring::colorEdgesMadec(g, {.seed = 9});
    coloring::MadecOptions options{.seed = 9};
    options.engine = net::EngineKind::BitPlane;
    const auto run = coloring::colorEdgesMadec(g, options);
    EXPECT_EQ(ref.colors, run.colors);
    expectSameMetrics(ref.metrics, run.metrics, 1);
    const graph::Digraph d(g);
    const auto dref = coloring::colorArcsDima2Ed(d, {.seed = 9});
    coloring::Dima2EdOptions d2{.seed = 9};
    d2.engine = net::EngineKind::BitPlane;
    const auto drun = coloring::colorArcsDima2Ed(d, d2);
    EXPECT_EQ(dref.colors, drun.colors);
    expectSameMetrics(dref.metrics, drun.metrics, 1);
  }
}

}  // namespace
}  // namespace dima
