#include "src/support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dima::support {
namespace {

TEST(ThreadPool, SingleWorkerDegradesToLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workerCount(), 1u);
  std::vector<int> hits(100, 0);
  pool.forEach(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.forEach(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.forEach(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, CountSmallerThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.forEach(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.forEach(64, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50L * (63 * 64 / 2));
}

TEST(ThreadPool, ForEachIsABarrier) {
  // After forEach returns, all side effects must be visible serially.
  ThreadPool pool(4);
  std::vector<int> data(1000, 0);
  pool.forEach(1000, [&](std::size_t i) { data[i] = static_cast<int>(i); });
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DefaultWorkerCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.workerCount(), 1u);
}

}  // namespace
}  // namespace dima::support
