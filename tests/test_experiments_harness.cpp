#include "src/experiments/harness.hpp"

#include <gtest/gtest.h>

namespace dima::exp {
namespace {

TEST(Workload, FamilyNamesAndLabels) {
  GraphSpec er{Family::ErdosRenyi, 200, 8.0, 0.0};
  EXPECT_EQ(er.label(), "erdos-renyi n=200 d=8");
  GraphSpec ws{Family::SmallWorld, 64, 4.0, 0.25};
  EXPECT_EQ(ws.label(), "small-world n=64 k=4 beta=0.25");
  GraphSpec ba{Family::ScaleFree, 100, 4.0, 1.5};
  EXPECT_EQ(ba.label(), "scale-free n=100 m=4 pow=1.5");
}

TEST(Workload, MakeGraphHonorsSpecs) {
  support::Rng rng(1);
  const graph::Graph er =
      makeGraph(GraphSpec{Family::ErdosRenyi, 100, 6.0, 0.0}, rng);
  EXPECT_EQ(er.numVertices(), 100u);
  EXPECT_EQ(er.numEdges(), 300u);

  const graph::Graph tree =
      makeGraph(GraphSpec{Family::RandomTree, 40, 0, 0}, rng);
  EXPECT_EQ(tree.numEdges(), 39u);

  const graph::Graph reg =
      makeGraph(GraphSpec{Family::RandomRegular, 20, 4.0, 0.0}, rng);
  EXPECT_EQ(reg.maxDegree(), 4u);
}

TEST(Workload, PaperWorkloadsHaveTheRightShape) {
  EXPECT_EQ(figure3Workload().size(), 6u);  // {200,400} × {4,8,16}
  EXPECT_EQ(figure4Workload().size(), 6u);  // {100,400} × 3 powers
  EXPECT_EQ(figure5Workload().size(), 6u);  // {16,64,256} × {sparse,dense}
  EXPECT_EQ(figure6Workload().size(), 4u);  // {200,400} × {4,8}
  for (const GraphSpec& spec : figure3Workload()) {
    EXPECT_EQ(spec.family, Family::ErdosRenyi);
  }
  for (const GraphSpec& spec : figure5Workload()) {
    EXPECT_EQ(spec.family, Family::SmallWorld);
  }
}

TEST(Sweep, MadecRecordsAreCompleteAndValid) {
  SweepConfig config;
  config.specs = {GraphSpec{Family::ErdosRenyi, 60, 4.0, 0.0},
                  GraphSpec{Family::ErdosRenyi, 60, 8.0, 0.0}};
  config.runsPerSpec = 3;
  config.seed = 77;
  const auto records = sweepMadec(config);
  ASSERT_EQ(records.size(), 6u);
  for (const RunRecord& rec : records) {
    EXPECT_TRUE(rec.valid);
    EXPECT_TRUE(rec.converged);
    EXPECT_GT(rec.rounds, 0u);
    EXPECT_GT(rec.delta, 0u);
    EXPECT_EQ(rec.n, 60u);
    EXPECT_EQ(rec.colorExcess,
              static_cast<std::int64_t>(rec.colors) -
                  static_cast<std::int64_t>(rec.delta));
  }
}

TEST(Sweep, IsDeterministicInSeed) {
  SweepConfig config;
  config.specs = {GraphSpec{Family::ErdosRenyi, 50, 5.0, 0.0}};
  config.runsPerSpec = 2;
  config.seed = 123;
  const auto a = sweepMadec(config);
  const auto b = sweepMadec(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds, b[i].rounds);
    EXPECT_EQ(a[i].colors, b[i].colors);
    EXPECT_EQ(a[i].delta, b[i].delta);
  }
}

TEST(Sweep, Dima2EdStrictHasNoConflicts) {
  SweepConfig config;
  config.specs = {GraphSpec{Family::ErdosRenyi, 40, 4.0, 0.0}};
  config.runsPerSpec = 3;
  config.seed = 9;
  const auto records = sweepDima2Ed(config);
  for (const RunRecord& rec : records) {
    EXPECT_TRUE(rec.valid);
    EXPECT_EQ(rec.conflicts, 0u);
  }
}

TEST(Summarize, AggregatesPerSpecAndPooled) {
  std::vector<GraphSpec> specs = {GraphSpec{Family::ErdosRenyi, 10, 2, 0},
                                  GraphSpec{Family::ErdosRenyi, 20, 2, 0}};
  std::vector<RunRecord> records;
  RunRecord r;
  r.specIndex = 0;
  r.delta = 4;
  r.rounds = 8;
  r.colors = 5;
  r.colorExcess = 1;
  r.valid = true;
  r.converged = true;
  records.push_back(r);
  r.specIndex = 1;
  r.delta = 6;
  r.rounds = 12;
  r.colors = 6;
  r.colorExcess = 0;
  r.valid = false;
  records.push_back(r);

  const SweepSummary summary = summarize(specs, records);
  EXPECT_EQ(summary.runs, 2u);
  EXPECT_EQ(summary.invalidRuns, 1u);
  EXPECT_EQ(summary.perSpec[0].runs, 1u);
  EXPECT_DOUBLE_EQ(summary.perSpec[0].rounds.mean(), 8.0);
  EXPECT_DOUBLE_EQ(summary.perSpec[0].roundsPerDelta.mean(), 2.0);
  EXPECT_EQ(summary.perSpec[1].invalidRuns, 1u);
  EXPECT_EQ(summary.colorExcess.countOf(1), 1u);
  // Pooled fit through (4,8) and (6,12): slope 2, intercept 0.
  EXPECT_NEAR(summary.roundsVsDelta.slope(), 2.0, 1e-9);
}

TEST(SummarizeDeathTest, RejectsOutOfRangeSpecIndex) {
  std::vector<GraphSpec> specs = {GraphSpec{Family::ErdosRenyi, 10, 2, 0}};
  std::vector<RunRecord> records(1);
  records[0].specIndex = 5;
  EXPECT_DEATH(summarize(specs, records), "out of range");
}

}  // namespace
}  // namespace dima::exp
