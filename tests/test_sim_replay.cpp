#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/args.hpp"
#include "src/cli/commands.hpp"

// Replays every committed repro file in tests/corpus/ through the real
// `dimacol replay` command: the corpus is the regression net for the fuzz
// pipeline itself (file format, chaos reconstruction, monitor verdicts).
// DIMA_CORPUS_DIR is injected by tests/CMakeLists.txt.

namespace dima::cli {
namespace {

struct ReplayRun {
  int code = 0;
  std::string out;
};

ReplayRun replayFile(const std::string& path) {
  Args args({"replay", path});
  std::ostringstream out, err;
  ReplayRun r;
  r.code = runCommand(args, out, err);
  r.out = out.str() + err.str();
  return r;
}

std::string corpusPath(const char* name) {
  return std::string(DIMA_CORPUS_DIR) + "/" + name;
}

TEST(Replay, MadecDropStormCorpusMatches) {
  const ReplayRun r = replayFile(corpusPath("madec-drop-storm.repro"));
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("[match]"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("expected safe"), std::string::npos) << r.out;
}

TEST(Replay, Dima2EdCrashCorpusMatches) {
  const ReplayRun r = replayFile(corpusPath("dima2ed-crash-asymmetry.repro"));
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("[match]"), std::string::npos) << r.out;
}

TEST(Replay, MutantHandshakeCorpusMatches) {
  const ReplayRun r =
      replayFile(corpusPath("strong-madec-mutant-handshake.repro"));
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("handshake-violation"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("[match]"), std::string::npos) << r.out;
}

TEST(Replay, CorpusFilesAreWellFormed) {
  // Every committed file must parse standalone (guards against a stale
  // corpus after a format change).
  for (const char* name :
       {"madec-drop-storm.repro", "dima2ed-crash-asymmetry.repro",
        "strong-madec-mutant-handshake.repro"}) {
    std::ifstream in(corpusPath(name));
    ASSERT_TRUE(in.good()) << corpusPath(name);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("dimacol-repro v1"), std::string::npos) << name;
    EXPECT_NE(buf.str().find("expect"), std::string::npos) << name;
  }
}

TEST(Replay, MissingFileIsAUsageError) {
  const ReplayRun r = replayFile("/nonexistent/nope.repro");
  EXPECT_EQ(r.code, 2);
}

}  // namespace
}  // namespace dima::cli
