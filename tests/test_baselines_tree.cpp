#include "src/baselines/tree_coloring.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/builder.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::baselines {
namespace {

void expectTreeColoring(const graph::Graph& g) {
  const TreeColoringResult result = treeEdgeColoring(g);
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.colors);
  ASSERT_TRUE(verdict.valid) << verdict.reason;
  if (g.numEdges() > 0) {
    EXPECT_LE(result.colorsUsed, g.maxDegree() + 1)
        << "Gandham-style bound violated";
    EXPECT_GE(result.colorsUsed, g.maxDegree());
  }
}

TEST(TreeColoring, PathsAndStars) {
  expectTreeColoring(graph::path(12));
  expectTreeColoring(graph::star(10));
  expectTreeColoring(graph::path(2));
}

TEST(TreeColoring, RandomTrees) {
  support::Rng rng(1);
  for (std::size_t n : {5u, 30u, 120u, 300u}) {
    expectTreeColoring(graph::randomTree(n, rng));
  }
}

TEST(TreeColoring, ForestsWithSeveralComponents) {
  support::Rng rng(2);
  graph::GraphBuilder b(0);
  // Three disjoint random trees.
  std::size_t offset = 0;
  for (std::size_t n : {10u, 15u, 20u}) {
    const graph::Graph t = graph::randomTree(n, rng);
    for (const graph::Edge& e : t.edges()) {
      b.addEdge(static_cast<graph::VertexId>(e.u + offset),
                static_cast<graph::VertexId>(e.v + offset));
    }
    offset += n;
  }
  expectTreeColoring(b.build());
}

TEST(TreeColoring, EmptyForest) {
  const TreeColoringResult result = treeEdgeColoring(graph::Graph(4));
  EXPECT_EQ(result.colorsUsed, 0u);
}

TEST(TreeColoring, ScheduledRoundsReported) {
  const TreeColoringResult result = treeEdgeColoring(graph::path(10));
  // levels (9) + Δ (2) + 1
  EXPECT_EQ(result.scheduledRounds, 12u);
}

TEST(TreeColoringDeathTest, RejectsCyclicGraphs) {
  EXPECT_DEATH(treeEdgeColoring(graph::cycle(5)), "forest");
  EXPECT_DEATH(treeEdgeColoring(graph::complete(4)), "forest");
}

}  // namespace
}  // namespace dima::baselines
