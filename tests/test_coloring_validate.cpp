#include "src/coloring/validate.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"

namespace dima::coloring {
namespace {

graph::Graph pathGraph4() {
  // 0-1-2-3: edges e0={0,1}, e1={1,2}, e2={2,3}
  return graph::Graph(4, {graph::Edge{0, 1}, graph::Edge{1, 2},
                          graph::Edge{2, 3}});
}

TEST(VerifyEdgeColoring, AcceptsProperColoring) {
  const graph::Graph g = pathGraph4();
  EXPECT_TRUE(verifyEdgeColoring(g, {0, 1, 0}));
}

TEST(VerifyEdgeColoring, RejectsAdjacentSameColor) {
  const graph::Graph g = pathGraph4();
  const Verdict v = verifyEdgeColoring(g, {0, 0, 1});
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.reason.find("vertex 1"), std::string::npos);
}

TEST(VerifyEdgeColoring, RejectsUncoloredUnlessPartialAllowed) {
  const graph::Graph g = pathGraph4();
  EXPECT_FALSE(verifyEdgeColoring(g, {0, kNoColor, 0}));
  EXPECT_TRUE(verifyEdgeColoring(g, {0, kNoColor, 0}, true));
  // Partial mode still rejects real conflicts.
  EXPECT_FALSE(verifyEdgeColoring(g, {0, 0, kNoColor}, true));
}

TEST(VerifyEdgeColoring, RejectsSizeMismatchAndNegativeColors) {
  const graph::Graph g = pathGraph4();
  EXPECT_FALSE(verifyEdgeColoring(g, {0, 1}));
  EXPECT_FALSE(verifyEdgeColoring(g, {0, -5, 1}));
}

TEST(StrongConflict, SharedEndpointAlwaysConflicts) {
  const graph::Digraph d(pathGraph4());
  const graph::ArcId a01 = d.findArc(0, 1);
  const graph::ArcId a10 = d.findArc(1, 0);
  const graph::ArcId a12 = d.findArc(1, 2);
  EXPECT_TRUE(strongConflict(d, a01, a10));  // antiparallel twins
  EXPECT_TRUE(strongConflict(d, a01, a12));  // share vertex 1
  EXPECT_FALSE(strongConflict(d, a01, a01)); // self
}

TEST(StrongConflict, DistanceTwoConflictsDistanceThreeDoesNot) {
  // Path 0-1-2-3: arcs (0→1) and (2→3) are joined by edge {1,2} → conflict.
  const graph::Digraph d(pathGraph4());
  EXPECT_TRUE(strongConflict(d, d.findArc(0, 1), d.findArc(2, 3)));
  // Path 0-1-2-3-4: arcs (0→1) and (3→4) are two edges apart → no conflict.
  const graph::Digraph d5(graph::path(5));
  EXPECT_FALSE(strongConflict(d5, d5.findArc(0, 1), d5.findArc(3, 4)));
}

TEST(VerifyStrongArcColoring, AcceptsSequentialGreedyStyleColoring) {
  // On the 4-path digraph every arc pair conflicts except none — the
  // distance-2 closure of a 3-edge path is a clique, so all-distinct works.
  const graph::Digraph d(pathGraph4());
  std::vector<Color> colors(d.numArcs());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = static_cast<Color>(i);
  }
  EXPECT_TRUE(verifyStrongArcColoring(d, colors));
}

TEST(VerifyStrongArcColoring, RejectsDistanceTwoClash) {
  const graph::Digraph d(pathGraph4());
  std::vector<Color> colors(d.numArcs());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = static_cast<Color>(i);
  }
  colors[d.findArc(0, 1)] = 42;
  colors[d.findArc(2, 3)] = 42;
  const Verdict v = verifyStrongArcColoring(d, colors);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.reason.find("42"), std::string::npos);
}

TEST(VerifyStrongArcColoring, DistanceThreeReuseAllowed) {
  const graph::Digraph d(graph::path(5));
  std::vector<Color> colors(d.numArcs());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = static_cast<Color>(i);
  }
  colors[d.findArc(0, 1)] = 77;
  colors[d.findArc(3, 4)] = 77;
  EXPECT_TRUE(verifyStrongArcColoring(d, colors));
}

TEST(VerifyStrongArcColoring, PartialMode) {
  const graph::Digraph d(pathGraph4());
  std::vector<Color> colors(d.numArcs(), kNoColor);
  colors[0] = 0;
  EXPECT_FALSE(verifyStrongArcColoring(d, colors));
  EXPECT_TRUE(verifyStrongArcColoring(d, colors, true));
}

TEST(CountStrongConflicts, CountsEachClashingPairOnce) {
  const graph::Digraph d(pathGraph4());
  std::vector<Color> colors(d.numArcs());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = static_cast<Color>(i);
  }
  EXPECT_EQ(countStrongConflicts(d, colors), 0u);
  colors[d.findArc(0, 1)] = 9;
  colors[d.findArc(2, 3)] = 9;
  EXPECT_EQ(countStrongConflicts(d, colors), 1u);
  colors[d.findArc(1, 2)] = 9;  // conflicts with both
  EXPECT_EQ(countStrongConflicts(d, colors), 3u);
}

TEST(Verdict, BooleanConversion) {
  EXPECT_TRUE(static_cast<bool>(Verdict::ok()));
  EXPECT_FALSE(static_cast<bool>(Verdict::fail("nope")));
}

}  // namespace
}  // namespace dima::coloring
