// The socket transport (src/service/transport.hpp): frame reassembly under
// every packetization the kernel can produce, listener accept/teardown,
// concurrent-session interleaving, and the byte-parity contract between the
// pipe path (`runSession`) and a real TCP session (PROTOCOLS.md §12.6).
//
// Tests may include the raw socket headers (socketpair below) — the
// `transport-layering` dimalint rule confines them within src/ only.

#include "src/service/transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/driver.hpp"
#include "src/service/hostile.hpp"
#include "src/service/replica.hpp"
#include "src/service/service.hpp"
#include "src/service/session.hpp"
#include "src/service/wire.hpp"
#include "src/support/rng.hpp"

namespace dima::service {
namespace {

CommandFrame hello(std::uint32_t n, std::uint32_t seq = 0) {
  CommandFrame f = makeFrame<ServiceKind::Hello, CommandFrame>();
  f.seq = seq;
  f.a = kServiceWireVersion;
  f.b = n;
  return f;
}

CommandFrame edgeCmd(ServiceKind kind, std::uint32_t u, std::uint32_t v,
                     std::uint32_t seq) {
  CommandFrame f;
  f.kind = kind;
  f.seq = seq;
  f.a = u;
  f.b = v;
  return f;
}

std::vector<std::uint8_t> concatEncoded(
    const std::vector<CommandFrame>& frames) {
  std::vector<std::uint8_t> bytes;
  for (const CommandFrame& f : frames) {
    std::vector<std::uint8_t> one;
    encodeCommand(f, &one);
    bytes.insert(bytes.end(), one.begin(), one.end());
  }
  return bytes;
}

/// A mixed scripted stream: handshake, edge commands, a Snapshot carrying a
/// string payload, control frames — every encoder shape in one sequence.
std::vector<CommandFrame> scriptedFrames() {
  std::vector<CommandFrame> frames;
  frames.push_back(hello(24, 0));
  frames.push_back(edgeCmd(ServiceKind::InsertEdge, 0, 1, 1));
  frames.push_back(edgeCmd(ServiceKind::QueryColor, 0, 1, 2));
  CommandFrame snap = makeFrame<ServiceKind::Snapshot, CommandFrame>();
  snap.seq = 3;
  snap.path = "checkpoints/deep/dir/run.ckp";
  frames.push_back(snap);
  frames.push_back(edgeCmd(ServiceKind::EraseEdge, 0, 1, 4));
  CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
  flush.seq = 5;
  frames.push_back(flush);
  return frames;
}

/// An AF_UNIX stream socketpair — a real kernel byte stream, so the reader
/// sees exactly the packetization the writer forces.
struct SocketPair {
  Fd a, b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

void readExactly(int fd, std::size_t count, CommandReader* reader) {
  std::uint8_t buf[4096];
  std::size_t total = 0;
  while (total < count) {
    const std::size_t want = std::min(count - total, sizeof(buf));
    const std::ptrdiff_t got = readSome(fd, buf, want);
    ASSERT_GT(got, 0) << "unexpected EOF after " << total << " bytes";
    reader->feed(buf, static_cast<std::size_t>(got));
    total += static_cast<std::size_t>(got);
  }
}

void drainFrames(CommandReader* reader, std::vector<CommandFrame>* out) {
  CommandFrame cmd;
  std::string error;
  DecodeStatus status;
  while ((status = reader->next(&cmd, &error)) == DecodeStatus::Frame) {
    out->push_back(cmd);
  }
  EXPECT_EQ(status, DecodeStatus::NeedMore) << error;
}

TEST(ServiceTransportFraming, OneByteDripThroughSocketpair) {
  const std::vector<CommandFrame> sent = scriptedFrames();
  const std::vector<std::uint8_t> bytes = concatEncoded(sent);

  SocketPair sp;
  CommandReader reader;
  std::vector<CommandFrame> got;
  for (const std::uint8_t byte : bytes) {
    ASSERT_TRUE(writeAll(sp.a.get(), &byte, 1));
    readExactly(sp.b.get(), 1, &reader);
    drainFrames(&reader, &got);
  }
  EXPECT_EQ(got, sent);
  EXPECT_FALSE(reader.midFrame());
}

TEST(ServiceTransportFraming, SplitAtEveryOffsetThroughSocketpair) {
  const std::vector<CommandFrame> sent = scriptedFrames();
  const std::vector<std::uint8_t> bytes = concatEncoded(sent);

  for (std::size_t split = 1; split + 1 < bytes.size(); ++split) {
    SocketPair sp;
    CommandReader reader;
    std::vector<CommandFrame> got;
    ASSERT_TRUE(writeAll(sp.a.get(), bytes.data(), split));
    readExactly(sp.b.get(), split, &reader);
    drainFrames(&reader, &got);
    ASSERT_TRUE(writeAll(sp.a.get(), bytes.data() + split,
                         bytes.size() - split));
    readExactly(sp.b.get(), bytes.size() - split, &reader);
    drainFrames(&reader, &got);
    ASSERT_EQ(got, sent) << "split offset " << split;
    ASSERT_FALSE(reader.midFrame()) << "split offset " << split;
  }
}

TEST(ServiceTransportFraming, CoalescedFramesInOneRead) {
  // Two frames written in one send must both decode out of a single read:
  // the reader cannot assume one frame per packet.
  const std::vector<CommandFrame> sent = {
      hello(24, 0), edgeCmd(ServiceKind::InsertEdge, 2, 3, 1)};
  const std::vector<std::uint8_t> bytes = concatEncoded(sent);

  SocketPair sp;
  ASSERT_TRUE(writeAll(sp.a.get(), bytes.data(), bytes.size()));
  std::uint8_t buf[4096];
  const std::ptrdiff_t got = readSome(sp.b.get(), buf, sizeof(buf));
  ASSERT_EQ(static_cast<std::size_t>(got), bytes.size())
      << "one local write should arrive as one coalesced read";

  CommandReader reader;
  reader.feed(buf, static_cast<std::size_t>(got));
  std::vector<CommandFrame> decoded;
  drainFrames(&reader, &decoded);
  EXPECT_EQ(decoded, sent);
  EXPECT_FALSE(reader.midFrame());
}

// --- listener lifecycle -----------------------------------------------------

TEST(ServiceTransportListener, AcceptsSessionsAndTearsDownCleanly) {
  ColoringService svc;
  TransportServer server(svc, TransportOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  std::vector<Fd> clients;
  for (int i = 0; i < 3; ++i) {
    Fd fd = connectTcp("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    clients.push_back(std::move(fd));
  }
  while (server.stats().sessionsAccepted.load() < 3) {
    std::this_thread::yield();
  }

  server.stop();  // idle sessions open — stop() must not hang on them
  EXPECT_EQ(server.stats().sessionsAccepted.load(), 3u);
  for (const Fd& fd : clients) {
    std::uint8_t buf[16];
    EXPECT_LE(readSome(fd.get(), buf, sizeof(buf)), 0)
        << "stopped server left a client socket open";
  }
}

ReplyFrame readReply(int fd, ReplyReader* reader) {
  ReplyFrame reply;
  std::string error;
  for (;;) {
    const DecodeStatus status = reader->next(&reply, &error);
    if (status == DecodeStatus::Frame) return reply;
    EXPECT_NE(status, DecodeStatus::Bad) << error;
    std::uint8_t buf[4096];
    const std::ptrdiff_t got = readSome(fd, buf, sizeof(buf));
    if (got <= 0) {
      ADD_FAILURE() << "EOF while waiting for a reply";
      return reply;
    }
    reader->feed(buf, static_cast<std::size_t>(got));
  }
}

void sendFrame(int fd, const CommandFrame& cmd) {
  std::vector<std::uint8_t> bytes;
  encodeCommand(cmd, &bytes);
  ASSERT_TRUE(writeAll(fd, bytes.data(), bytes.size()));
}

TEST(ServiceTransportListener, SessionCapClosesExcessConnects) {
  ColoringService svc;
  TransportOptions to;
  to.maxSessions = 1;
  TransportServer server(svc, to);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd first = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(first.valid()) << error;
  while (server.stats().sessionsAccepted.load() < 1) {
    std::this_thread::yield();
  }

  // Over the cap: the connect succeeds (listen backlog) but the acceptor
  // closes it without a session — the client just sees EOF.
  Fd second = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(second.valid()) << error;
  std::uint8_t buf[16];
  EXPECT_LE(readSome(second.get(), buf, sizeof(buf)), 0);
  EXPECT_EQ(server.stats().sessionsAccepted.load(), 1u);

  // The capped connect must not have disturbed the live session.
  sendFrame(first.get(), hello(16, 1));
  ReplyReader reader;
  const ReplyFrame r = readReply(first.get(), &reader);
  EXPECT_EQ(r.kind, ServiceKind::HelloOk);
  EXPECT_EQ(r.seq, 1u);
  server.stop();
}

// --- concurrent sessions ----------------------------------------------------

TEST(ServiceTransportSessions, ConcurrentSessionsInterleaveDeterministically) {
  ServiceOptions so;
  so.seed = 0x1a7eULL;
  so.policy.maxBatch = 64;
  ColoringService svc(so);
  TransportServer server(svc, TransportOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd a = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(a.valid()) << error;
  Fd b = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(b.valid()) << error;
  ReplyReader readerA, readerB;

  // First Hello creates the graph; the second attaches to it.
  sendFrame(a.get(), hello(64, 1));
  ReplyFrame r = readReply(a.get(), &readerA);
  ASSERT_EQ(r.kind, ServiceKind::HelloOk);
  sendFrame(b.get(), hello(64, 1));
  r = readReply(b.get(), &readerB);
  ASSERT_EQ(r.kind, ServiceKind::HelloOk);
  EXPECT_EQ(r.b, 64u);

  // Both sessions burst 8 inserts of disjoint edges concurrently. Whatever
  // admission order the queue produces, each session's replies must come
  // back in its own seq order, one Ack per insert.
  std::vector<std::uint8_t> burstA, burstB;
  for (std::uint32_t i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> one;
    encodeCommand(edgeCmd(ServiceKind::InsertEdge, 2 * i, 2 * i + 1, 10 + i),
                  &one);
    burstA.insert(burstA.end(), one.begin(), one.end());
    one.clear();
    encodeCommand(
        edgeCmd(ServiceKind::InsertEdge, 32 + 2 * i, 33 + 2 * i, 20 + i),
        &one);
    burstB.insert(burstB.end(), one.begin(), one.end());
  }
  std::thread writerA(
      [&] { (void)!writeAll(a.get(), burstA.data(), burstA.size()); });
  std::thread writerB(
      [&] { (void)!writeAll(b.get(), burstB.data(), burstB.size()); });
  writerA.join();
  writerB.join();
  for (std::uint32_t i = 0; i < 8; ++i) {
    r = readReply(a.get(), &readerA);
    EXPECT_EQ(r.kind, ServiceKind::Ack);
    EXPECT_EQ(r.seq, 10 + i);
    r = readReply(b.get(), &readerB);
    EXPECT_EQ(r.kind, ServiceKind::Ack);
    EXPECT_EQ(r.seq, 20 + i);
  }

  // Shutdown closes session A only (PROTOCOLS.md §12.6): A gets the ack
  // and EOF, B keeps working against the same live graph.
  CommandFrame bye = makeFrame<ServiceKind::Shutdown, CommandFrame>();
  bye.seq = 99;
  sendFrame(a.get(), bye);
  r = readReply(a.get(), &readerA);
  EXPECT_EQ(r.kind, ServiceKind::Ack);
  EXPECT_EQ(r.seq, 99u);
  EXPECT_EQ(r.a, kNoServiceEdge);
  std::uint8_t buf[16];
  EXPECT_LE(readSome(a.get(), buf, sizeof(buf)), 0);

  sendFrame(b.get(), edgeCmd(ServiceKind::InsertEdge, 60, 61, 30));
  r = readReply(b.get(), &readerB);
  EXPECT_EQ(r.kind, ServiceKind::Ack);
  EXPECT_EQ(r.seq, 30u);

  server.stop();
  EXPECT_EQ(server.stats().commandsAdmitted.load(),
            1u + 8u + 8u + 1u);  // first Hello + both bursts + B's last
  CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
  svc.handle(flush);
  EXPECT_EQ(svc.graph().numEdges(), 17u);
}

// --- pipe vs socket byte parity ---------------------------------------------

/// Replays one byte stream through a real TCP session and returns the raw
/// reply bytes (the socket half of the parity pin).
std::string socketReplies(ColoringService& service,
                          const std::vector<std::uint8_t>& bytes) {
  TransportServer server(service, TransportOptions{});
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;
  Fd fd = connectTcp("127.0.0.1", server.port(), &error);
  EXPECT_TRUE(fd.valid()) << error;
  if (!fd.valid()) {
    server.stop();
    return {};
  }
  std::thread writer([&] {
    (void)!writeAll(fd.get(), bytes.data(), bytes.size());
    shutdownWrite(fd.get());
  });
  std::string replies;
  std::uint8_t buf[4096];
  std::ptrdiff_t got;
  while ((got = readSome(fd.get(), buf, sizeof(buf))) > 0) {
    replies.append(reinterpret_cast<const char*>(buf),
                   static_cast<std::size_t>(got));
  }
  writer.join();
  server.stop();
  return replies;
}

TEST(ServiceTransportParity, PipeAndSocketReplyBytesIdentical) {
  // Every hostile corruption mode, twice over: the TCP path must emit the
  // exact reply bytes `runSession` does — same framing-error replies, same
  // disconnect points, same synthesized Shutdown ack (PROTOCOLS.md §12.6).
  HostileOptions ho;
  ho.seed = 0x9a11ULL;
  ho.n = 32;
  ho.commands = 48;
  ho.maxBatch = 8;
  for (std::size_t round = 0; round < 12; ++round) {
    const std::vector<std::uint8_t> bytes = buildHostileBytes(ho, round);
    ServiceOptions so;
    so.seed = support::mix64(ho.seed, round);
    so.policy.maxBatch = ho.maxBatch;
    so.monitor = true;
    so.detTime = true;  // EpochDone carries the latency metric — pin it

    ColoringService pipeSvc(so);
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    std::ostringstream out(std::ios::binary);
    runSession(pipeSvc, in, out);

    ColoringService sockSvc(so);
    const std::string viaSocket = socketReplies(sockSvc, bytes);

    EXPECT_EQ(out.str(), viaSocket) << "round " << round;
    EXPECT_EQ(pipeSvc.violations().size(), sockSvc.violations().size())
        << "round " << round;
  }
}

// --- slow peers must not stall the shared consumer ---------------------------

/// Connects with a tiny SO_RCVBUF (set before connect so the TCP window is
/// negotiated small): together with a small server-side SO_SNDBUF this makes
/// a client that stops reading back-pressure the consumer's send() after a
/// few KiB of replies instead of after megabytes of kernel buffering.
Fd connectSmallRcvbuf(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  EXPECT_TRUE(fd.valid());
  const int rcvbuf = 4096;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// Hello + `count` QueryColor frames as one byte blob (the queries miss, so
/// every one earns a ColorInfo{NoSuchEdge} reply — pure write pressure).
std::vector<std::uint8_t> stallStream(std::size_t count) {
  std::vector<CommandFrame> frames;
  frames.push_back(hello(16, 0));
  for (std::uint32_t i = 0; i < count; ++i) {
    frames.push_back(edgeCmd(ServiceKind::QueryColor, 1, 2, 1 + i));
  }
  return concatEncoded(frames);
}

/// Blocks until `repliesWritten` has been nonzero and unchanged for
/// `stableSamples` × 100 ms: the consumer is either wedged in send() on a
/// full socket, has dropped the stalled session, or is simply done. Six
/// samples (600 ms) outlasts any single 200 ms send timeout, so after this
/// returns a timed-out session has definitely been dropped already.
void awaitReplyPlateau(const TransportServer& server, int stableSamples) {
  std::uint64_t last = 0;
  int stable = 0;
  while (stable < stableSamples) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::uint64_t now = server.stats().repliesWritten.load();
    stable = (now > 0 && now == last) ? stable + 1 : 0;
    last = now;
  }
}

TEST(ServiceTransportSlowPeer, StopUnblocksConsumerBlockedOnStalledPeer) {
  // REVIEW pin: with no write timeout, a peer that stops reading blocks the
  // consumer inside send(). stop() must shut the session fds down BEFORE
  // joining the consumer — joining first deadlocks forever.
  ColoringService svc;
  TransportOptions to;
  to.writeTimeoutMs = 0;  // block forever: stop() is the only way out
  to.sndbufBytes = 4096;
  TransportServer server(svc, to);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd client = connectSmallRcvbuf(server.port());
  const std::vector<std::uint8_t> bytes = stallStream(4000);
  std::thread writer(
      [&] { (void)!writeAll(client.get(), bytes.data(), bytes.size()); });

  // Wait until the reply counter plateaus: the consumer is either wedged
  // in send() on the full socket (the expected case — only a fraction of
  // the replies fit in the shrunken buffers) or, at worst, done.
  awaitReplyPlateau(server, 4);

  server.stop();  // must return: the fd shutdown fails the blocked send
  writer.join();
  EXPECT_GT(server.stats().repliesWritten.load(), 0u);
}

TEST(ServiceTransportSlowPeer, StalledPeerIsDroppedAfterWriteTimeout) {
  // With a write timeout the stalled session is dropped on its own and the
  // consumer keeps serving everyone else.
  ColoringService svc;
  TransportOptions to;
  to.writeTimeoutMs = 200;
  to.sndbufBytes = 4096;
  TransportServer server(svc, to);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd stalled = connectSmallRcvbuf(server.port());
  const std::vector<std::uint8_t> bytes = stallStream(4000);
  std::thread writer(
      [&] { (void)!writeAll(stalled.get(), bytes.data(), bytes.size()); });

  // Stay stalled (read NOTHING) until the reply counter has been flat for
  // longer than the write timeout — by then the wedged send has expired
  // and the session is dropped. Only then drain: the replies already
  // buffered for the dead session come out, followed by EOF.
  awaitReplyPlateau(server, 6);
  std::uint8_t buf[4096];
  while (readSome(stalled.get(), buf, sizeof(buf)) > 0) {
  }
  writer.join();

  // The consumer survived and still serves a healthy session.
  Fd healthy = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(healthy.valid()) << error;
  sendFrame(healthy.get(), hello(16, 7));
  ReplyReader reader;
  ReplyFrame r = readReply(healthy.get(), &reader);
  EXPECT_EQ(r.kind, ServiceKind::HelloOk);
  sendFrame(healthy.get(), edgeCmd(ServiceKind::InsertEdge, 0, 1, 8));
  r = readReply(healthy.get(), &reader);
  EXPECT_EQ(r.kind, ServiceKind::Ack);
  server.stop();
}

// --- durability gate ---------------------------------------------------------

TEST(ServiceTransportDurability, LogAppendFailureRefusesTheCommand) {
  // REVIEW pin: an append the log could not durably record must never be
  // applied and acked — reply Error{IoError}, close the session, and stay
  // failed (a torn record would orphan everything appended after it).
  ColoringService svc;
  TransportOptions to;
  to.logPath = testing::TempDir() + "transport_poisoned.dimalog";
  TransportServer server(svc, to);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd a = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(a.valid()) << error;
  ReplyReader readerA;
  sendFrame(a.get(), hello(16, 0));
  ASSERT_EQ(readReply(a.get(), &readerA).kind, ServiceKind::HelloOk);
  sendFrame(a.get(), edgeCmd(ServiceKind::InsertEdge, 0, 1, 1));
  ASSERT_EQ(readReply(a.get(), &readerA).kind, ServiceKind::Ack);

  server.commandLogForTest().poison();  // the disk just filled up

  sendFrame(a.get(), edgeCmd(ServiceKind::InsertEdge, 1, 2, 2));
  ReplyFrame r = readReply(a.get(), &readerA);
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::IoError));
  std::uint8_t buf[16];
  EXPECT_LE(readSome(a.get(), buf, sizeof(buf)), 0)
      << "refused session must be disconnected";

  // Sticky: a fresh session attaches fine (no state change) but its next
  // mutation is refused the same way.
  Fd b = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(b.valid()) << error;
  ReplyReader readerB;
  sendFrame(b.get(), hello(16, 3));
  EXPECT_EQ(readReply(b.get(), &readerB).kind, ServiceKind::HelloOk);
  sendFrame(b.get(), edgeCmd(ServiceKind::InsertEdge, 2, 3, 4));
  r = readReply(b.get(), &readerB);
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::IoError));

  server.stop();
  EXPECT_EQ(server.stats().logAppendFailures.load(), 2u);
  // Neither refused insert reached the service.
  CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
  svc.handle(flush);
  EXPECT_EQ(svc.graph().numEdges(), 1u);
}

// --- converged-boundary gate -------------------------------------------------

TEST(ServiceTransportBoundary, UnconvergedEpochDefersBootstrapAndSnapshot) {
  // REVIEW pin: an epoch that hit the maxCycles cap drains the backlog with
  // converged=false. backlog()==0 alone must not admit a background
  // snapshot or a replica bootstrap — the Snapshot command itself refuses
  // exactly that state (NotConverged).
  ServiceOptions so;
  so.seed = 0xcab1eULL;
  so.maxCycles = 1;            // a 4-edge star cannot converge in one cycle
  so.policy.maxBatch = 1024;   // only Flush runs epochs
  ColoringService svc(so);
  TransportOptions to;
  to.snapshotEvery = 1;
  to.snapshotPath = testing::TempDir() + "transport_boundary.ckp";
  TransportServer server(svc, to);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd a = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(a.valid()) << error;
  ReplyReader readerA;
  sendFrame(a.get(), hello(8, 0));
  ASSERT_EQ(readReply(a.get(), &readerA).kind, ServiceKind::HelloOk);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    sendFrame(a.get(), edgeCmd(ServiceKind::InsertEdge, 0, i, i));
    ASSERT_EQ(readReply(a.get(), &readerA).kind, ServiceKind::Ack);
  }
  CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
  flush.seq = 10;
  sendFrame(a.get(), flush);
  ReplyFrame r = readReply(a.get(), &readerA);
  ASSERT_EQ(r.kind, ServiceKind::Error);
  ASSERT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::NotConverged));
  EXPECT_EQ(server.stats().snapshotsTaken.load(), 0u)
      << "snapshotted an unconverged coloring";

  // A standby syncing now must be deferred, not fed the unconverged state.
  Fd b = connectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(b.valid()) << error;
  ReplicaClient standby;
  std::string syncError;
  std::thread syncer([&] {
    EXPECT_TRUE(standby.sync(b.get(), &syncError)) << syncError;
  });
  while (server.stats().replicasDeferred.load() +
             server.stats().replicasServed.load() ==
         0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.stats().replicasServed.load(), 0u)
      << "bootstrapped a standby off an unconverged boundary";

  // Flush until the star converges (one cycle per epoch colors at least
  // one edge); the converging admission flushes the pending standby.
  bool converged = false;
  for (std::uint32_t i = 0; i < 200 && !converged; ++i) {
    flush.seq = 100 + i;
    sendFrame(a.get(), flush);
    r = readReply(a.get(), &readerA);
    converged = r.kind == ServiceKind::EpochDone;
  }
  ASSERT_TRUE(converged) << "star never converged under the cycle cap";
  syncer.join();
  // The converging admission serves the pending bootstrap and then takes
  // the deferred background snapshot; both land moments after the client
  // saw its EpochDone reply, so wait rather than sample.
  while (server.stats().replicasServed.load() < 1 ||
         server.stats().snapshotsTaken.load() < 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.stats().replicasServed.load(), 1u);

  server.stop();
  // The standby got the *converged* state: bit-identical to the primary.
  ASSERT_NE(standby.service(), nullptr);
  EXPECT_EQ(standby.service()->colorDigest(), svc.colorDigest());
  EXPECT_EQ(standby.service()->statsTable(), svc.statsTable());
}

// --- small-budget soak (the `soak` tier runs the big one) --------------------

TEST(ServiceTransportSoak, SmallBudgetCampaign) {
  SoakSpec spec;
  spec.n = 48;
  spec.commands = 2000;
  spec.hostileRounds = 6;  // one full cycle of the corruption modes
  const SoakReport report = runSoakCampaign(spec);
  EXPECT_TRUE(report.ok()) << report.firstFailure;
  EXPECT_GE(report.sessions, spec.cleanSessions + spec.hostileSessions);
  EXPECT_GT(report.commandsAdmitted, static_cast<std::uint64_t>(spec.commands));
  EXPECT_GT(report.framingErrors, 0u);
  EXPECT_EQ(report.monitorViolations, 0u);
}

}  // namespace
}  // namespace dima::service
