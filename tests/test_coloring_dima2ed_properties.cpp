#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/coloring/dima2ed.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::coloring {
namespace {

class Dima2EdProperty : public ::testing::TestWithParam<
                            std::tuple<const char*, std::size_t, int>> {
 protected:
  graph::Graph makeGraph() const {
    const auto [family, n, seed] = GetParam();
    support::Rng rng(static_cast<std::uint64_t>(seed) * 6271 + n);
    const std::string f = family;
    if (f == "erdos") return graph::erdosRenyiAvgDegree(n, 4.0, rng);
    if (f == "tree") return graph::randomTree(n, rng);
    if (f == "cycle") return graph::cycle(n);
    if (f == "grid") return graph::grid(n / 6 + 2, 6);
    if (f == "smallworld") return graph::wattsStrogatz(n, 4, 0.25, rng);
    ADD_FAILURE() << "unknown family " << f;
    return graph::Graph(0);
  }

  std::uint64_t runSeed() const {
    const auto [family, n, seed] = GetParam();
    return support::mix64(static_cast<std::uint64_t>(seed) + 17, n);
  }
};

TEST_P(Dima2EdProperty, StrictModeProducesValidStrongColoring) {
  const graph::Graph g = makeGraph();
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = runSeed();
  const ArcColoringResult result = colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged)
      << "n=" << g.numVertices() << " m=" << g.numEdges();
  const Verdict verdict = verifyStrongArcColoring(d, result.colors);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
  // Any strong coloring needs at least the clique lower bound.
  EXPECT_GE(result.colorsUsed(), graph::strongColoringLowerBound(g));
}

TEST_P(Dima2EdProperty, RoundsStayLinearInDelta) {
  const graph::Graph g = makeGraph();
  if (g.maxDegree() == 0) GTEST_SKIP();
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = runSeed();
  const ArcColoringResult result = colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  // Strong coloring pays a larger constant than MaDEC (a node must pair
  // once per incident arc, 2δ of them) — budget 40Δ + 60 to catch
  // super-linear regressions without flakiness.
  EXPECT_LE(result.metrics.computationRounds, 40 * g.maxDegree() + 60)
      << "n=" << g.numVertices() << " D=" << g.maxDegree();
}

TEST_P(Dima2EdProperty, RandomPolicyAlsoValid) {
  const graph::Graph g = makeGraph();
  const graph::Digraph d(g);
  Dima2EdOptions options;
  options.seed = runSeed() + 1;
  options.policy = ColorPolicy::ExpandingWindow;
  const ArcColoringResult result = colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(verifyStrongArcColoring(d, result.colors));
}

INSTANTIATE_TEST_SUITE_P(
    Families, Dima2EdProperty,
    ::testing::Combine(
        ::testing::Values("erdos", "tree", "cycle", "grid", "smallworld"),
        ::testing::Values<std::size_t>(18, 48, 96),
        ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char*, std::size_t, int>>& paramInfo) {
      return std::string(std::get<0>(paramInfo.param)) + "_n" +
             std::to_string(std::get<1>(paramInfo.param)) + "_s" +
             std::to_string(std::get<2>(paramInfo.param));
    });

/// The quality of the distributed coloring against the sequential greedy
/// comparator should be within a small constant factor.
TEST(Dima2EdQuality, WithinConstantFactorOfLowerBound) {
  support::Rng rng(31);
  for (int i = 0; i < 4; ++i) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(80, 5.0, rng);
    const graph::Digraph d(g);
    Dima2EdOptions options;
    options.seed = static_cast<std::uint64_t>(i);
    const ArcColoringResult result = colorArcsDima2Ed(d, options);
    ASSERT_TRUE(result.metrics.converged);
    const std::size_t lower = graph::strongColoringLowerBound(g);
    EXPECT_LE(result.colorsUsed(), 4 * lower + 8)
        << "distributed strong coloring quality collapsed";
  }
}

}  // namespace
}  // namespace dima::coloring
