// Failover determinism (PROTOCOLS.md §12.8): the kill-at-every-epoch-
// boundary drill, the durable command log's torn-tail handling, snapshot
// markers gated by checkpoint digests, and the replication bootstrap blob.

#include "src/service/drill.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/service/checkpoint.hpp"
#include "src/service/driver.hpp"
#include "src/service/replica.hpp"
#include "src/service/service.hpp"
#include "src/service/wire.hpp"

namespace dima::service {
namespace {

std::string tmpPath(const std::string& stem) {
  return testing::TempDir() + stem;
}

bool readFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + got);
  }
  std::fclose(f);
  return true;
}

bool writeFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

CommandFrame helloCmd(std::uint32_t n) {
  CommandFrame f = makeFrame<ServiceKind::Hello, CommandFrame>();
  f.a = kServiceWireVersion;
  f.b = n;
  return f;
}

CommandFrame flushCmd(std::uint32_t seq = 0) {
  CommandFrame f = makeFrame<ServiceKind::Flush, CommandFrame>();
  f.seq = seq;
  return f;
}

std::vector<CommandFrame> scriptedBody(std::size_t count) {
  StreamSpec spec;
  spec.seed = 0xfa110ULL;
  spec.n = 24;
  spec.commands = count;
  return buildCommandList(spec);
}

ServiceOptions primaryOptions() {
  ServiceOptions so;
  so.seed = 0x11ceULL;
  so.policy.maxBatch = 8;
  so.detTime = true;
  return so;
}

// --- the drill sweep --------------------------------------------------------

TEST(ServiceFailover, KillAtEveryEpochBoundaryIsByteIdentical) {
  DrillOptions o;
  o.spec.seed = 0x7e57ULL;
  o.spec.n = 32;
  o.spec.commands = 60;
  o.policy.maxBatch = 8;
  const DrillReport r = runFailoverDrill(o);
  EXPECT_TRUE(r.ok()) << r.firstFailure;
  EXPECT_GT(r.epochBoundaries, 0u);
  // Full sweep: every boundary plus the kill-before-anything point.
  EXPECT_EQ(r.killPoints, r.epochBoundaries + 1);
  EXPECT_EQ(r.passed, r.killPoints);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_NE(r.goldenColorDigest, 0u);
}

TEST(ServiceFailover, MaxKillPointsSubsamplesTheSweep) {
  DrillOptions o;
  o.spec.seed = 0x7e57ULL;
  o.spec.n = 32;
  o.spec.commands = 60;
  o.policy.maxBatch = 8;
  o.maxKillPoints = 4;
  const DrillReport r = runFailoverDrill(o);
  EXPECT_TRUE(r.ok()) << r.firstFailure;
  EXPECT_EQ(r.killPoints, 4u);
  EXPECT_EQ(r.passed, 4u);
}

// --- the durable command log ------------------------------------------------

TEST(ServiceFailover, CommandLogRoundTripsAndRewritesSnapshotToFlush) {
  const std::string path = tmpPath("dima_failover_roundtrip.dimalog");
  std::vector<CommandFrame> cmds;
  cmds.push_back(helloCmd(24));
  std::uint32_t seq = 1;
  for (CommandFrame f : scriptedBody(10)) {
    f.seq = seq++;
    cmds.push_back(f);
  }
  CommandFrame snap = makeFrame<ServiceKind::Snapshot, CommandFrame>();
  snap.seq = 99;
  snap.path = "never/replayed.ckp";
  {
    CommandLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    for (const CommandFrame& f : cmds) ASSERT_TRUE(log.appendCommand(f));
    ASSERT_TRUE(log.appendCommand(snap));
  }

  LogReadResult rr;
  std::string error;
  ASSERT_TRUE(readCommandLog(path, &rr, &error)) << error;
  EXPECT_FALSE(rr.torn);
  ASSERT_EQ(rr.records.size(), cmds.size() + 1);
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    EXPECT_EQ(rr.records[i].type, LogRecord::Type::Command);
    EXPECT_EQ(rr.records[i].cmd, cmds[i]) << "record " << i;
  }
  // Snapshot is logged in replicated form: a Flush with the same seq and
  // no path — replay must not re-write the primary's checkpoint files.
  const CommandFrame& last = rr.records.back().cmd;
  EXPECT_EQ(last.kind, ServiceKind::Flush);
  EXPECT_EQ(last.seq, 99u);
  EXPECT_TRUE(last.path.empty());
}

TEST(ServiceFailover, TornTailStopsAtLastCompleteRecord) {
  const std::string path = tmpPath("dima_failover_torn.dimalog");
  std::vector<CommandFrame> cmds;
  cmds.push_back(helloCmd(24));
  std::uint32_t seq = 1;
  for (CommandFrame f : scriptedBody(8)) {
    f.seq = seq++;
    cmds.push_back(f);
  }
  {
    CommandLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    for (const CommandFrame& f : cmds) ASSERT_TRUE(log.appendCommand(f));
  }
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(readFileBytes(path, &bytes));

  // Truncation mid-record: the primary died inside an append.
  std::vector<std::uint8_t> torn(bytes.begin(), bytes.end() - 3);
  ASSERT_TRUE(writeFileBytes(path, torn));
  LogReadResult rr;
  std::string error;
  ASSERT_TRUE(readCommandLog(path, &rr, &error)) << error;
  EXPECT_TRUE(rr.torn);
  ASSERT_EQ(rr.records.size(), cmds.size() - 1);
  for (std::size_t i = 0; i + 1 < cmds.size(); ++i) {
    EXPECT_EQ(rr.records[i].cmd, cmds[i]);
  }

  // Bit rot in the final record's digest: same verdict, same good prefix.
  std::vector<std::uint8_t> rotted = bytes;
  rotted.back() ^= 0x40;
  ASSERT_TRUE(writeFileBytes(path, rotted));
  rr = LogReadResult{};
  ASSERT_TRUE(readCommandLog(path, &rr, &error)) << error;
  EXPECT_TRUE(rr.torn);
  EXPECT_EQ(rr.records.size(), cmds.size() - 1);

  // A file cut inside the magic is not a log at all.
  ASSERT_TRUE(writeFileBytes(
      path, std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + 4)));
  rr = LogReadResult{};
  EXPECT_FALSE(readCommandLog(path, &rr, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ServiceFailover, RecoverFromLogReplaysFromScratch) {
  const std::string path = tmpPath("dima_failover_recover.dimalog");
  const ServiceOptions so = primaryOptions();
  ColoringService primary(so);
  {
    CommandLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    std::uint32_t seq = 0;
    CommandFrame h = helloCmd(24);
    h.seq = seq++;
    primary.handle(h);
    ASSERT_TRUE(log.appendCommand(h));
    for (CommandFrame f : scriptedBody(40)) {
      f.seq = seq++;
      primary.handle(f);
      ASSERT_TRUE(log.appendCommand(f));
    }
    const CommandFrame flush = flushCmd(seq++);
    primary.handle(flush);
    ASSERT_TRUE(log.appendCommand(flush));
  }

  LogRecoverResult out;
  std::string error;
  ASSERT_TRUE(recoverFromLog(path, so, &out, &error)) << error;
  ASSERT_NE(out.service, nullptr);
  EXPECT_EQ(out.applied, 42u);  // Hello + 40 body + Flush
  EXPECT_FALSE(out.torn);
  EXPECT_TRUE(out.checkpointPath.empty());
  EXPECT_TRUE(out.service->ready());
  EXPECT_TRUE(out.service->helloDone());
  EXPECT_EQ(out.service->checkpoint(), primary.checkpoint());
  EXPECT_EQ(out.service->colorDigest(), primary.colorDigest());
}

TEST(ServiceFailover, RecoverUsesMarkerAndSkipsStaleDigest) {
  const std::string path = tmpPath("dima_failover_marker.dimalog");
  const std::string ckp = tmpPath("dima_failover_marker.ckp");
  const ServiceOptions so = primaryOptions();
  ColoringService primary(so);
  const std::vector<CommandFrame> body = scriptedBody(40);
  {
    CommandLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    std::uint32_t seq = 0;
    CommandFrame h = helloCmd(24);
    h.seq = seq++;
    primary.handle(h);
    ASSERT_TRUE(log.appendCommand(h));
    for (std::size_t i = 0; i < 20; ++i) {
      CommandFrame f = body[i];
      f.seq = seq++;
      primary.handle(f);
      ASSERT_TRUE(log.appendCommand(f));
    }
    CommandFrame flush = flushCmd(seq++);
    primary.handle(flush);
    ASSERT_TRUE(log.appendCommand(flush));
    // The background-snapshot idiom: checkpoint at the converged boundary,
    // marker pinned to the file's digest.
    std::uint64_t digest = 0;
    ASSERT_TRUE(
        saveCheckpoint(primary.checkpoint(), ckp, &error, nullptr, &digest))
        << error;
    ASSERT_TRUE(log.appendMarker(ckp, digest));
    for (std::size_t i = 20; i < body.size(); ++i) {
      CommandFrame f = body[i];
      f.seq = seq++;
      primary.handle(f);
      ASSERT_TRUE(log.appendCommand(f));
    }
    flush = flushCmd(seq++);
    primary.handle(flush);
    ASSERT_TRUE(log.appendCommand(flush));
  }
  const Checkpoint want = primary.checkpoint();

  // With the marker intact, recovery restores the checkpoint and replays
  // only the 21 records logged after it.
  LogRecoverResult out;
  std::string error;
  ASSERT_TRUE(recoverFromLog(path, so, &out, &error)) << error;
  EXPECT_EQ(out.checkpointPath, ckp);
  EXPECT_EQ(out.applied, 21u);  // 20 later commands + final Flush
  EXPECT_EQ(out.service->checkpoint(), want);

  // Corrupt the checkpoint file: the marker's digest no longer matches, so
  // recovery must fall back to a full from-scratch replay — same state.
  std::vector<std::uint8_t> ckpBytes;
  ASSERT_TRUE(readFileBytes(ckp, &ckpBytes));
  ckpBytes[ckpBytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(writeFileBytes(ckp, ckpBytes));
  out = LogRecoverResult{};
  ASSERT_TRUE(recoverFromLog(path, so, &out, &error)) << error;
  EXPECT_TRUE(out.checkpointPath.empty());
  EXPECT_EQ(out.applied, 43u);  // Hello + 40 body + both Flushes
  EXPECT_EQ(out.service->checkpoint(), want);
}

// --- the replication bootstrap blob -----------------------------------------

TEST(ServiceFailover, BootstrapRoundTripRebuildsTheStandbyExactly) {
  const ServiceOptions so = primaryOptions();
  ColoringService primary(so);
  std::uint32_t seq = 0;
  CommandFrame h = helloCmd(24);
  h.seq = seq++;
  primary.handle(h);
  const std::vector<CommandFrame> body = scriptedBody(40);
  for (std::size_t i = 0; i < 30; ++i) {
    CommandFrame f = body[i];
    f.seq = seq++;
    primary.handle(f);
  }
  primary.handle(flushCmd(seq++));  // converged boundary, as the transport
                                    // requires before capturing

  const ReplicaBootstrap b = captureBootstrap(primary);
  const std::vector<std::uint8_t> bytes = encodeBootstrap(b);
  ReplicaBootstrap decoded;
  std::string error;
  ASSERT_TRUE(decodeBootstrap(bytes.data(), bytes.size(), &decoded, &error))
      << error;
  std::unique_ptr<ColoringService> standby = serviceFromBootstrap(decoded);
  ASSERT_NE(standby, nullptr);
  EXPECT_EQ(standby->checkpoint(), primary.checkpoint());
  EXPECT_EQ(standby->statsTable(), primary.statsTable());

  // The standby keeps tracking: the same replicated tail produces the same
  // colors, stats included (detTime).
  for (std::size_t i = 30; i < body.size(); ++i) {
    CommandFrame f = body[i];
    f.seq = seq++;
    primary.handle(f);
    applyReplicatedCommand(*standby, replicatedForm(f));
  }
  const CommandFrame flush = flushCmd(seq++);
  primary.handle(flush);
  applyReplicatedCommand(*standby, replicatedForm(flush));
  EXPECT_EQ(standby->checkpoint(), primary.checkpoint());
  EXPECT_EQ(standby->statsTable(), primary.statsTable());
  EXPECT_EQ(standby->colorDigest(), primary.colorDigest());
}

namespace {

/// Overwrites the u64 at `offset` and re-seals the trailing FNV digest, so
/// the blob passes the integrity check with a hostile field value — the
/// digest is an integrity check, not a MAC, and any peer can recompute it.
void forgeU64Field(std::vector<std::uint8_t>* bytes, std::size_t offset,
                   std::uint64_t value) {
  ASSERT_GE(bytes->size(), offset + 8 + 8);
  for (int i = 0; i < 8; ++i) {
    (*bytes)[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  const std::uint64_t digest = fnv1a64(bytes->data(), bytes->size() - 8);
  for (int i = 0; i < 8; ++i) {
    (*bytes)[bytes->size() - 8 + i] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  }
}

/// Byte offset of the latency-sample count inside an encoded bootstrap:
/// magic(8) | flags(1) | seed, maxBatch, maxStaleness, maxCycles,
/// mutations, queries, backlogPeak (7 × u64).
constexpr std::size_t kSamplesOffset = 8 + 1 + 7 * 8;

}  // namespace

TEST(ServiceFailover, OverflowingSampleCountIsRejected) {
  // A sample count whose ×8 wraps the counting type must not slip past the
  // bounds check and walk the decode loop off the end of the blob.
  ColoringService primary(primaryOptions());
  std::vector<std::uint8_t> bytes = encodeBootstrap(captureBootstrap(primary));
  forgeU64Field(&bytes, kSamplesOffset, ~std::uint64_t{0});
  ReplicaBootstrap decoded;
  std::string error;
  EXPECT_FALSE(decodeBootstrap(bytes.data(), bytes.size(), &decoded, &error));
  EXPECT_EQ(error, "bootstrap truncated");
}

TEST(ServiceFailover, OverflowingCheckpointLengthIsRejected) {
  ColoringService primary(primaryOptions());
  primary.handle(helloCmd(16));
  primary.handle(flushCmd(1));
  const ReplicaBootstrap b = captureBootstrap(primary);
  ASSERT_TRUE(b.hasCore);
  std::vector<std::uint8_t> bytes = encodeBootstrap(b);
  // cpLen sits right after the samples block.
  const std::size_t cpLenOffset =
      kSamplesOffset + 8 + 8 * b.metrics.latency.size();
  forgeU64Field(&bytes, cpLenOffset, ~std::uint64_t{0});
  ReplicaBootstrap decoded;
  std::string error;
  EXPECT_FALSE(decodeBootstrap(bytes.data(), bytes.size(), &decoded, &error));
  EXPECT_EQ(error, "bootstrap truncated");
}

TEST(ServiceFailover, CorruptBootstrapIsRejected) {
  const ServiceOptions so = primaryOptions();
  ColoringService primary(so);
  CommandFrame h = helloCmd(16);
  primary.handle(h);
  primary.handle(flushCmd(1));
  std::vector<std::uint8_t> bytes = encodeBootstrap(captureBootstrap(primary));
  bytes[bytes.size() / 2] ^= 0x10;
  ReplicaBootstrap decoded;
  std::string error;
  EXPECT_FALSE(
      decodeBootstrap(bytes.data(), bytes.size(), &decoded, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dima::service
