#include "src/net/async_beta.hpp"

#include <gtest/gtest.h>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::net {
namespace {

graph::Graph connectedGraph(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::wattsStrogatz(n, 6, 0.25, rng);  // always connected
}

TEST(BetaSynchronizer, MadecBetaMatchesSynchronousBitForBit) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const graph::Graph g = connectedGraph(50, 10 + seed);
    coloring::MadecOptions options;
    options.seed = 1000 + seed;
    const auto sync = coloring::colorEdgesMadec(g, options);
    AsyncRunResult stats;
    const auto beta = coloring::colorEdgesMadecAsync(
        g, options, {}, &stats, coloring::Synchronizer::Beta);
    ASSERT_TRUE(beta.metrics.converged);
    EXPECT_EQ(sync.colors, beta.colors);
    EXPECT_TRUE(coloring::verifyEdgeColoring(g, beta.colors));
  }
}

TEST(BetaSynchronizer, AlphaAndBetaAgreeOnResults) {
  const graph::Graph g = connectedGraph(60, 4);
  coloring::MadecOptions options;
  options.seed = 77;
  AsyncRunResult alphaStats, betaStats;
  const auto alpha = coloring::colorEdgesMadecAsync(
      g, options, {}, &alphaStats, coloring::Synchronizer::Alpha);
  const auto beta = coloring::colorEdgesMadecAsync(
      g, options, {}, &betaStats, coloring::Synchronizer::Beta);
  EXPECT_EQ(alpha.colors, beta.colors);
  EXPECT_EQ(alphaStats.payloadMessages, betaStats.payloadMessages);
  EXPECT_EQ(alphaStats.ackMessages, betaStats.ackMessages);
}

TEST(BetaSynchronizer, TradesMessagesForLatency) {
  // On a dense graph β's per-pulse control traffic is 2(n−1) messages vs
  // α's 2m — β must send fewer control messages; its simulated time per
  // pulse must be larger (the wave crosses the tree twice).
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiGnp(40, 0.5, rng);
  ASSERT_TRUE(graph::isConnected(g));
  coloring::MadecOptions options;
  options.seed = 3;
  AsyncRunResult alphaStats, betaStats;
  (void)coloring::colorEdgesMadecAsync(g, options, {}, &alphaStats,
                                       coloring::Synchronizer::Alpha);
  (void)coloring::colorEdgesMadecAsync(g, options, {}, &betaStats,
                                       coloring::Synchronizer::Beta);
  EXPECT_LT(betaStats.safeMessages, alphaStats.safeMessages);
  EXPECT_GT(betaStats.simTime, alphaStats.simTime);
}

TEST(BetaSynchronizer, RunsDirectProtocolOnTrees) {
  // Exercise the synchronizer on the tree itself (root = vertex 0).
  const graph::Graph g = graph::path(12);
  coloring::MadecOptions options;
  options.seed = 8;
  AsyncRunResult stats;
  const auto result = coloring::colorEdgesMadecAsync(
      g, options, {}, &stats, coloring::Synchronizer::Beta);
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors));
  EXPECT_LE(result.colorsUsed(), 3u);  // ≤ 2Δ−1 on a path
  EXPECT_EQ(stats.payloadMessages, stats.ackMessages);
}

TEST(BetaSynchronizer, DeterministicInDelaySeed) {
  const graph::Graph g = connectedGraph(30, 6);
  coloring::MadecOptions options;
  options.seed = 11;
  DelayModel delays;
  delays.seed = 42;
  AsyncRunResult a, b;
  (void)coloring::colorEdgesMadecAsync(g, options, delays, &a,
                                       coloring::Synchronizer::Beta);
  (void)coloring::colorEdgesMadecAsync(g, options, delays, &b,
                                       coloring::Synchronizer::Beta);
  EXPECT_DOUBLE_EQ(a.simTime, b.simTime);
  EXPECT_EQ(a.totalMessages(), b.totalMessages());
}

TEST(BetaSynchronizerDeathTest, RequiresConnectedGraph) {
  graph::Graph g(4, {graph::Edge{0, 1}});  // two isolated vertices
  coloring::MadecOptions options;
  EXPECT_DEATH(coloring::colorEdgesMadecAsync(
                   g, options, {}, nullptr, coloring::Synchronizer::Beta),
               "connected");
}

}  // namespace
}  // namespace dima::net
