#include "src/coloring/strong_madec.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/baselines/strong_greedy.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::coloring {
namespace {

TEST(StrongMadec, TrivialGraphs) {
  const EdgeColoringResult empty = colorEdgesStrongMadec(graph::Graph(0));
  EXPECT_TRUE(empty.metrics.converged);
  const EdgeColoringResult isolated = colorEdgesStrongMadec(graph::Graph(4));
  EXPECT_TRUE(isolated.metrics.converged);
  EXPECT_EQ(isolated.metrics.computationRounds, 0u);
}

TEST(StrongMadec, PathOfThreeEdgesNeedsThreeColors) {
  // All three edges of P4 pairwise conflict at distance ≤ 2.
  const graph::Graph g = graph::path(4);
  const EdgeColoringResult result = colorEdgesStrongMadec(g, {.seed = 2});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(verifyStrongEdgeColoring(g, result.colors));
  EXPECT_EQ(result.colorsUsed(), 3u);
}

TEST(StrongMadec, StarIsAStrongClique) {
  const graph::Graph g = graph::star(8);
  const EdgeColoringResult result = colorEdgesStrongMadec(g, {.seed = 3});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(verifyStrongEdgeColoring(g, result.colors));
  EXPECT_EQ(result.colorsUsed(), 7u);  // every edge pair conflicts
}

TEST(StrongMadec, DeterministicInSeed) {
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(50, 4.0, rng);
  const EdgeColoringResult a = colorEdgesStrongMadec(g, {.seed = 11});
  const EdgeColoringResult b = colorEdgesStrongMadec(g, {.seed = 11});
  EXPECT_EQ(a.colors, b.colors);
}

TEST(StrongMadec, ReliableRunsNeverHalfCommit) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 5.0, rng);
  const EdgeColoringResult result = colorEdgesStrongMadec(g, {.seed = 6});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(result.halfCommitted.empty());
}

class StrongMadecSweep : public ::testing::TestWithParam<
                             std::tuple<const char*, std::size_t, int>> {};

TEST_P(StrongMadecSweep, ValidStrongColoringAcrossFamilies) {
  const auto [family, n, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 883 + n);
  const std::string f = family;
  graph::Graph g(0);
  if (f == "erdos") {
    g = graph::erdosRenyiAvgDegree(n, 4.0, rng);
  } else if (f == "cycle") {
    g = graph::cycle(n);
  } else if (f == "tree") {
    g = graph::randomTree(n, rng);
  } else if (f == "grid") {
    g = graph::grid(n / 8 + 2, 8);
  }
  StrongMadecOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  const EdgeColoringResult result = colorEdgesStrongMadec(g, options);
  ASSERT_TRUE(result.metrics.converged)
      << f << " n=" << g.numVertices() << " m=" << g.numEdges();
  const Verdict verdict = verifyStrongEdgeColoring(g, result.colors);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Families, StrongMadecSweep,
    ::testing::Combine(::testing::Values("erdos", "cycle", "tree", "grid"),
                       ::testing::Values<std::size_t>(16, 48, 96),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char*, std::size_t, int>>& paramInfo) {
      return std::string(std::get<0>(paramInfo.param)) + "_n" +
             std::to_string(std::get<1>(paramInfo.param)) + "_s" +
             std::to_string(std::get<2>(paramInfo.param));
    });

TEST(StrongMadec, QualityComparableToSequentialGreedy) {
  support::Rng rng(7);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 5.0, rng);
  const EdgeColoringResult distributed =
      colorEdgesStrongMadec(g, {.seed = 8});
  ASSERT_TRUE(distributed.metrics.converged);
  // The sequential greedy on the digraph colors 2m arcs; an undirected
  // strong coloring of m edges is a coarser object. Compare against the
  // undirected clique lower bound instead: edges incident to one vertex v
  // plus ... at least Δ edges pairwise conflict around the max-degree
  // vertex.
  EXPECT_GE(distributed.colorsUsed(), g.maxDegree());
  EXPECT_LE(distributed.colorsUsed(), 10 * g.maxDegree());
}

TEST(StrongEdgeConflict, Semantics) {
  const graph::Graph g = graph::path(5);  // edges 0:{0,1} 1:{1,2} 2:{2,3} 3:{3,4}
  EXPECT_TRUE(strongEdgeConflict(g, 0, 1));   // share vertex 1
  EXPECT_TRUE(strongEdgeConflict(g, 0, 2));   // joined by edge {1,2}
  EXPECT_FALSE(strongEdgeConflict(g, 0, 3));  // distance 3
  EXPECT_FALSE(strongEdgeConflict(g, 2, 2));  // self
}

TEST(VerifyStrongEdgeColoring, AcceptsAndRejects) {
  const graph::Graph g = graph::path(5);
  EXPECT_TRUE(verifyStrongEdgeColoring(g, {0, 1, 2, 0}));
  const Verdict bad = verifyStrongEdgeColoring(g, {0, 1, 0, 2});
  EXPECT_FALSE(bad.valid);
  EXPECT_FALSE(verifyStrongEdgeColoring(g, {0, 1, kNoColor, 0}));
  EXPECT_TRUE(verifyStrongEdgeColoring(g, {0, 1, kNoColor, 0}, true));
}

}  // namespace
}  // namespace dima::coloring
