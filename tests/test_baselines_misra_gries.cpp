#include "src/baselines/misra_gries.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

namespace dima::baselines {
namespace {

void expectVizing(const graph::Graph& g) {
  const MisraGriesResult result = misraGriesEdgeColoring(g);
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.colors);
  ASSERT_TRUE(verdict.valid) << verdict.reason << " (n=" << g.numVertices()
                             << ", m=" << g.numEdges() << ")";
  EXPECT_LE(result.colorsUsed, g.maxDegree() + 1)
      << "Vizing bound violated on n=" << g.numVertices();
}

TEST(MisraGries, EmptyAndTrivial) {
  EXPECT_EQ(misraGriesEdgeColoring(graph::Graph(0)).colorsUsed, 0u);
  EXPECT_EQ(misraGriesEdgeColoring(graph::Graph(4)).colorsUsed, 0u);
  graph::Graph single(2, {graph::Edge{0, 1}});
  EXPECT_EQ(misraGriesEdgeColoring(single).colorsUsed, 1u);
}

TEST(MisraGries, ClassicSmallGraphs) {
  expectVizing(graph::complete(4));
  expectVizing(graph::complete(7));   // odd K_n needs Δ+1
  expectVizing(graph::cycle(5));      // odd cycle needs 3 = Δ+1
  expectVizing(graph::cycle(6));
  expectVizing(graph::star(12));
  expectVizing(graph::path(10));
  expectVizing(graph::grid(4, 5));
}

TEST(MisraGries, PetersenLikeRegularGraphs) {
  support::Rng rng(5);
  for (std::size_t d : {3u, 4u, 6u}) {
    expectVizing(graph::randomRegular(20, d, rng));
  }
}

TEST(MisraGries, BipartiteUsesAtMostDeltaPlusOne) {
  // König: bipartite graphs are Δ-edge-chromatic; MG guarantees Δ+1 and
  // often achieves Δ. Assert the guarantee.
  support::Rng rng(6);
  expectVizing(graph::randomBipartite(12, 15, 0.4, rng));
}

class MisraGriesSweep : public ::testing::TestWithParam<
                            std::tuple<std::size_t, double, int>> {};

TEST_P(MisraGriesSweep, VizingBoundAcrossRandomGraphs) {
  const auto [n, degree, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 31 + n);
  expectVizing(graph::erdosRenyiAvgDegree(n, degree, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Random, MisraGriesSweep,
    ::testing::Combine(::testing::Values<std::size_t>(20, 60, 120),
                       ::testing::Values(3.0, 6.0, 10.0),
                       ::testing::Values(1, 2, 3, 4)));

TEST(MisraGries, DenseGraphStress) {
  support::Rng rng(7);
  expectVizing(graph::erdosRenyiGnm(40, 400, rng));
  expectVizing(graph::complete(16));
}

TEST(MisraGries, ScaleFreeAndSmallWorld) {
  support::Rng rng(8);
  expectVizing(graph::barabasiAlbert(100, 3, 1.2, rng));
  expectVizing(graph::wattsStrogatz(80, 6, 0.3, rng));
}

}  // namespace
}  // namespace dima::baselines
