#include "src/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

TEST(EdgeListIo, RoundTripInMemory) {
  support::Rng rng(1);
  const Graph g = erdosRenyiGnm(30, 60, rng);
  const Graph back = fromEdgeList(toEdgeList(g));
  EXPECT_TRUE(g == back);
}

TEST(EdgeListIo, PreservesIsolatedVerticesViaHeader) {
  Graph g(7, {Edge{0, 1}});
  const Graph back = fromEdgeList(toEdgeList(g));
  EXPECT_EQ(back.numVertices(), 7u);
  EXPECT_EQ(back.numEdges(), 1u);
}

TEST(EdgeListIo, ParsesCommentsAndBlankLines) {
  const Graph g = fromEdgeList("# header\n\n0 1  # inline comment\n1 2\n");
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_EQ(g.numVertices(), 3u);
}

TEST(EdgeListIo, DeduplicatesInput) {
  const Graph g = fromEdgeList("0 1\n1 0\n0 1\n");
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(EdgeListIoDeathTest, MalformedLineDies) {
  EXPECT_DEATH(fromEdgeList("0\n"), "expected 'u v'");
  EXPECT_DEATH(fromEdgeList("3 3\n"), "self-loop");
}

TEST(EdgeListIo, FileRoundTrip) {
  support::Rng rng(2);
  const Graph g = erdosRenyiGnm(20, 40, rng);
  const std::string path = ::testing::TempDir() + "dima_graph_io.txt";
  ASSERT_TRUE(saveEdgeList(g, path));
  bool ok = false;
  const Graph back = loadEdgeList(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(g == back);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileReportsFailure) {
  bool ok = true;
  const Graph g = loadEdgeList("/nonexistent/nowhere.txt", &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(g.numVertices(), 0u);
}

TEST(DotExport, UndirectedContainsEdgesAndColors) {
  Graph g(3, {Edge{0, 1}, Edge{1, 2}});
  const std::string plain = toDot(g);
  EXPECT_NE(plain.find("graph dimacol"), std::string::npos);
  EXPECT_NE(plain.find("0 -- 1"), std::string::npos);
  const std::string colored = toDot(g, {0, 1});
  EXPECT_NE(colored.find("label=\"0\""), std::string::npos);
  EXPECT_NE(colored.find("color="), std::string::npos);
}

TEST(DotExport, DirectedContainsArcs) {
  Graph g(2, {Edge{0, 1}});
  const Digraph d(g);
  const std::string dot = toDot(d, {2, 3});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 0"), std::string::npos);
}

TEST(DotExportDeathTest, ColorSizeMismatchDies) {
  Graph g(3, {Edge{0, 1}, Edge{1, 2}});
  EXPECT_DEATH(toDot(g, {0}), "size mismatch");
}

// ---------------------------------------------------------------------------
// SNAP edge lists: '#' comments, arbitrary u64 raw ids compacted in
// first-appearance order, self-loops and duplicates counted and skipped,
// malformed lines rejected with a line number instead of silently dropped.

TEST(SnapIo, ParsesCommentsTabsAndArbitraryIds) {
  ParseReport report;
  const Graph g = fromSnap(
      "# Directed graph (each unordered pair once)\n"
      "# FromNodeId\tToNodeId\n"
      "1000000\t42\n"
      "42 7\n"
      "7\t1000000\r\n",
      &report);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(g.numVertices(), 3u);  // dense ids in first-appearance order
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_TRUE(g.hasEdge(0, 1));  // 1000000-42
  EXPECT_TRUE(g.hasEdge(1, 2));  // 42-7
  EXPECT_TRUE(g.hasEdge(2, 0));  // 7-1000000
}

TEST(SnapIo, CountsSelfLoopsAndDuplicates) {
  ParseReport report;
  const Graph g = fromSnap("0 1\n1 1\n1 0\n0 1\n", &report);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(report.selfLoopsSkipped, 1u);
  EXPECT_EQ(report.duplicatesSkipped, 2u);
}

TEST(SnapIo, MalformedLinesAreErrorsWithLineNumbers) {
  const char* bad[] = {
      "0 1\nx y\n",            // non-numeric
      "0 1\n2\n",              // missing endpoint
      "0 1\n1 2 3\n",          // trailing token
      "0 1\n1 99999999999999999999\n",  // u64 overflow
  };
  for (const char* text : bad) {
    ParseReport report;
    fromSnap(text, &report);
    EXPECT_FALSE(report.ok) << text;
    EXPECT_NE(report.error.find("line 2"), std::string::npos)
        << text << " -> " << report.error;
  }
}

TEST(SnapIo, MissingFileReportsFailure) {
  ParseReport report;
  loadSnap("/nonexistent/nowhere.snap", &report);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

// DIMACS: `c` comments, one `p edge n m` line, 1-based `e u v` lines.

TEST(DimacsIo, ParsesTheStandardShape) {
  ParseReport report;
  const Graph g = fromDimacs(
      "c a DIMACS coloring instance\n"
      "p edge 4 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 3 4\n",
      &report);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(2, 3));
}

TEST(DimacsIo, RejectsMalformedInstances) {
  const char* bad[] = {
      "e 1 2\n",                        // edge before p
      "p edge 2 1\np edge 2 1\ne 1 2\n",  // duplicate p
      "p edge 2 1\ne 1 3\n",            // endpoint out of range
      "p edge 2 1\ne 0 1\n",            // 1-based ids, 0 invalid
      "p edge 2 1\nq 1 2\n",            // unknown line type
      "p edge x 1\ne 1 2\n",            // non-numeric header
  };
  for (const char* text : bad) {
    ParseReport report;
    fromDimacs(text, &report);
    EXPECT_FALSE(report.ok) << text;
    EXPECT_FALSE(report.error.empty()) << text;
  }
}

// Format detection: extension first, then content sniffing.

TEST(GraphFormatDetect, ParseNamesAndSniffing) {
  GraphFormat f = GraphFormat::Auto;
  EXPECT_TRUE(parseGraphFormat("snap", &f));
  EXPECT_EQ(f, GraphFormat::Snap);
  EXPECT_TRUE(parseGraphFormat("dimacs", &f));
  EXPECT_EQ(f, GraphFormat::Dimacs);
  EXPECT_TRUE(parseGraphFormat("csr", &f));
  EXPECT_EQ(f, GraphFormat::Csr);
  EXPECT_FALSE(parseGraphFormat("gml", &f));

  const std::string dir = ::testing::TempDir();
  const auto write = [&](const std::string& name, const std::string& body) {
    const std::string path = dir + name;
    std::FILE* out = std::fopen(path.c_str(), "wb");
    std::fwrite(body.data(), 1, body.size(), out);
    std::fclose(out);
    return path;
  };
  const std::string dimacs = write("sniff.txt", "c x\np edge 2 1\ne 1 2\n");
  EXPECT_EQ(detectGraphFormat(dimacs, GraphFormat::Auto), GraphFormat::Dimacs);
  const std::string edgelist = write("sniff2.txt", "n 3\n0 1\n");
  EXPECT_EQ(detectGraphFormat(edgelist, GraphFormat::Auto),
            GraphFormat::EdgeList);
  const std::string snap = write("sniff3.txt", "# snap\n10 20\n");
  EXPECT_EQ(detectGraphFormat(snap, GraphFormat::Auto), GraphFormat::Snap);
  const std::string col = write("sniff4.col", "");
  EXPECT_EQ(detectGraphFormat(col, GraphFormat::Auto), GraphFormat::Dimacs);
  // An explicit request always wins over extension and content.
  EXPECT_EQ(detectGraphFormat(dimacs, GraphFormat::Snap), GraphFormat::Snap);
  std::remove(dimacs.c_str());
  std::remove(edgelist.c_str());
  std::remove(snap.c_str());
  std::remove(col.c_str());
}

}  // namespace
}  // namespace dima::graph
