#include "src/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

TEST(EdgeListIo, RoundTripInMemory) {
  support::Rng rng(1);
  const Graph g = erdosRenyiGnm(30, 60, rng);
  const Graph back = fromEdgeList(toEdgeList(g));
  EXPECT_TRUE(g == back);
}

TEST(EdgeListIo, PreservesIsolatedVerticesViaHeader) {
  Graph g(7, {Edge{0, 1}});
  const Graph back = fromEdgeList(toEdgeList(g));
  EXPECT_EQ(back.numVertices(), 7u);
  EXPECT_EQ(back.numEdges(), 1u);
}

TEST(EdgeListIo, ParsesCommentsAndBlankLines) {
  const Graph g = fromEdgeList("# header\n\n0 1  # inline comment\n1 2\n");
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_EQ(g.numVertices(), 3u);
}

TEST(EdgeListIo, DeduplicatesInput) {
  const Graph g = fromEdgeList("0 1\n1 0\n0 1\n");
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(EdgeListIoDeathTest, MalformedLineDies) {
  EXPECT_DEATH(fromEdgeList("0\n"), "expected 'u v'");
  EXPECT_DEATH(fromEdgeList("3 3\n"), "self-loop");
}

TEST(EdgeListIo, FileRoundTrip) {
  support::Rng rng(2);
  const Graph g = erdosRenyiGnm(20, 40, rng);
  const std::string path = ::testing::TempDir() + "dima_graph_io.txt";
  ASSERT_TRUE(saveEdgeList(g, path));
  bool ok = false;
  const Graph back = loadEdgeList(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(g == back);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileReportsFailure) {
  bool ok = true;
  const Graph g = loadEdgeList("/nonexistent/nowhere.txt", &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(g.numVertices(), 0u);
}

TEST(DotExport, UndirectedContainsEdgesAndColors) {
  Graph g(3, {Edge{0, 1}, Edge{1, 2}});
  const std::string plain = toDot(g);
  EXPECT_NE(plain.find("graph dimacol"), std::string::npos);
  EXPECT_NE(plain.find("0 -- 1"), std::string::npos);
  const std::string colored = toDot(g, {0, 1});
  EXPECT_NE(colored.find("label=\"0\""), std::string::npos);
  EXPECT_NE(colored.find("color="), std::string::npos);
}

TEST(DotExport, DirectedContainsArcs) {
  Graph g(2, {Edge{0, 1}});
  const Digraph d(g);
  const std::string dot = toDot(d, {2, 3});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 0"), std::string::npos);
}

TEST(DotExportDeathTest, ColorSizeMismatchDies) {
  Graph g(3, {Edge{0, 1}, Edge{1, 2}});
  EXPECT_DEATH(toDot(g, {0}), "size mismatch");
}

}  // namespace
}  // namespace dima::graph
