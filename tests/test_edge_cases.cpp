/// \file test_edge_cases.cpp
/// Focused edge-case coverage across modules that the main suites touch
/// only incidentally.

#include <gtest/gtest.h>

#include "src/cli/args.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/net/engine.hpp"
#include "src/net/trace.hpp"
#include "src/support/small_vector.hpp"

namespace dima {
namespace {

TEST(EdgeCases, StrictDima2EdActuallyAborts) {
  // The tentative/abort handshake must be doing real work, not just
  // sitting idle: on a dense workload the same-round collisions it exists
  // to catch occur every run (8–28 aborts measured across seeds 0–9).
  support::Rng rng(9);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 8.0, rng);
  const graph::Digraph d(g);
  net::TraceLog trace;
  trace.enable();
  coloring::Dima2EdOptions options;
  options.seed = 0;
  options.trace = &trace;
  const auto result = coloring::colorArcsDima2Ed(d, options);
  ASSERT_TRUE(result.metrics.converged);
  std::size_t aborts = 0;
  for (const net::TraceEvent& e : trace.events()) {
    if (e.kind == net::TraceKind::Aborted) ++aborts;
  }
  EXPECT_GT(aborts, 0u)
      << "no same-round collisions on a dense graph — either the workload "
         "is wrong or the abort path is dead";
}

TEST(EdgeCases, EngineMaxCyclesZeroRunsNothing) {
  struct Idle {
    struct Msg {};
    // Part of the engine's duck-typed protocol contract, even if no round
    // ever runs here.
    using Message [[maybe_unused]] = Msg;
    int subRounds() const { return 1; }
    void beginCycle(net::NodeId) { ++begun; }
    void send(net::NodeId, int, net::SyncNetwork<Msg>&) {}
    void receive(net::NodeId, int, net::Inbox<Msg>) {}
    void endCycle(net::NodeId) {}
    bool done(net::NodeId) const { return false; }
    int begun = 0;
  };
  const graph::Graph g = graph::cycle(3);
  Idle proto;
  net::SyncNetwork<Idle::Msg> net(g);
  net::EngineOptions options;
  options.maxCycles = 0;
  const net::EngineResult result = runSyncProtocol(proto, net, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.cycles, 0u);
  EXPECT_EQ(proto.begun, 0);
}

TEST(EdgeCases, SmallVectorEraseDeathOnBadIndex) {
  support::SmallVector<int, 2> v{1, 2};
  EXPECT_DEATH(v.eraseAt(5), "out of range");
  EXPECT_DEATH(v.eraseAtUnordered(2), "out of range");
}

TEST(EdgeCases, SmallVectorReserveBelowSizeIsNoOp) {
  support::SmallVector<int, 2> v{1, 2, 3, 4};
  const auto cap = v.capacity();
  v.reserve(1);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(v.size(), 4u);
}

TEST(EdgeCases, ArgsEqualsWithEmptyValue) {
  cli::Args args({"cmd", "--name="});
  EXPECT_TRUE(args.has("name"));
  EXPECT_EQ(args.get("name", "fallback"), "");
}

TEST(EdgeCases, LoadEdgeListWithoutOkPointerOnMissingFile) {
  const graph::Graph g = graph::loadEdgeList("/no/such/file");
  EXPECT_EQ(g.numVertices(), 0u);
}

TEST(EdgeCases, EdgeListHeaderSmallerThanEdgesGrows) {
  // An `n` header smaller than the actual endpoints must not truncate.
  const graph::Graph g = graph::fromEdgeList("n 2\n0 5\n");
  EXPECT_EQ(g.numVertices(), 6u);
}

TEST(EdgeCases, MadecOnDisconnectedGraphColorsEachComponent) {
  // Two separate triangles plus isolated vertices.
  graph::Graph g(8, {graph::Edge{0, 1}, graph::Edge{1, 2}, graph::Edge{0, 2},
                     graph::Edge{3, 4}, graph::Edge{4, 5},
                     graph::Edge{3, 5}});
  const auto result = coloring::colorEdgesMadec(g, {.seed = 5});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors));
  EXPECT_EQ(result.colorsUsed(), 3u);  // each triangle needs exactly 3
}

TEST(EdgeCases, Dima2EdOnStarTerminatesBothDirections) {
  // The hub must accept Δ invitations *and* win Δ of its own — the
  // one-sided role rule (only-in ⇒ listen, only-out ⇒ invite) is what
  // keeps the endgame alive.
  const graph::Graph g = graph::star(8);
  const graph::Digraph d(g);
  const auto result = coloring::colorArcsDima2Ed(d, {.seed = 6});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(coloring::verifyStrongArcColoring(d, result.colors));
  EXPECT_EQ(result.colorsUsed(), d.numArcs());  // star arcs all conflict
}

TEST(EdgeCases, TwoNodeGraphFastPath) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  const auto madec = coloring::colorEdgesMadec(g, {.seed = 1});
  EXPECT_TRUE(madec.metrics.converged);
  // Exactly one coin-agreement needed; expected 4 rounds, tail-bounded.
  EXPECT_LE(madec.metrics.computationRounds, 64u);
}

}  // namespace
}  // namespace dima
