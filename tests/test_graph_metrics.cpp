#include "src/graph/metrics.hpp"

#include <gtest/gtest.h>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

TEST(DegreeStats, StarGraph) {
  const DegreeStats s = degreeStats(star(5));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degreeStats(Graph(0));
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(DegreeHistogram, CountsPerDegree) {
  const auto hist = degreeHistogram(star(5));
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(Components, DisjointPieces) {
  Graph g(6, {Edge{0, 1}, Edge{1, 2}, Edge{3, 4}});
  const Components c = connectedComponents(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[3], c.label[5]);
}

TEST(Components, ConnectedGraph) {
  EXPECT_TRUE(isConnected(complete(5)));
  EXPECT_TRUE(isConnected(Graph(1)));
  EXPECT_TRUE(isConnected(Graph(0)));
  EXPECT_FALSE(isConnected(Graph(2)));
}

TEST(IsForest, TreesAndCycles) {
  EXPECT_TRUE(isForest(path(6)));
  EXPECT_TRUE(isForest(star(6)));
  EXPECT_TRUE(isForest(Graph(4)));  // isolated vertices
  EXPECT_FALSE(isForest(cycle(4)));
  EXPECT_FALSE(isForest(complete(4)));
  Graph twoTrees(6, {Edge{0, 1}, Edge{2, 3}, Edge{3, 4}});
  EXPECT_TRUE(isForest(twoTrees));
}

TEST(BfsDistances, PathGraph) {
  const auto dist = bfsDistances(path(5), 0);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsDistances, UnreachableMarked) {
  Graph g(4, {Edge{0, 1}});
  const auto dist = bfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path(7)), 6u);
  EXPECT_EQ(diameter(cycle(8)), 4u);
  EXPECT_EQ(diameter(complete(5)), 1u);
  EXPECT_EQ(diameter(star(9)), 2u);
  EXPECT_EQ(diameter(Graph(1)), 0u);
}

TEST(ClusteringCoefficient, ExtremeCases) {
  EXPECT_DOUBLE_EQ(clusteringCoefficient(complete(5)), 1.0);
  EXPECT_DOUBLE_EQ(clusteringCoefficient(star(6)), 0.0);
  EXPECT_DOUBLE_EQ(clusteringCoefficient(path(2)), 0.0);
}

TEST(ClusteringCoefficient, SmallWorldBeatsRandom) {
  support::Rng rng(77);
  const Graph ws = wattsStrogatz(200, 8, 0.1, rng);
  const Graph er = erdosRenyiAvgDegree(200, 8.0, rng);
  EXPECT_GT(clusteringCoefficient(ws), 2.0 * clusteringCoefficient(er));
}

TEST(StrongColoringLowerBound, StarAndCycle) {
  // Star K_{1,4}: best edge pairs hub(4) with leaf(1): 2*(4+1-1) = 8.
  EXPECT_EQ(strongColoringLowerBound(star(5)), 8u);
  // Cycle: every edge joins two degree-2 vertices: 2*(2+2-1) = 6.
  EXPECT_EQ(strongColoringLowerBound(cycle(6)), 6u);
  EXPECT_EQ(strongColoringLowerBound(Graph(3)), 0u);
}

TEST(EdgeColoringLowerBound, IsDelta) {
  EXPECT_EQ(edgeColoringLowerBound(star(9)), 8u);
}

}  // namespace
}  // namespace dima::graph
