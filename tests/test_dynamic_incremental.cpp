#include "src/dynamic/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/dynamic/churn.hpp"
#include "src/graph/generators.hpp"
#include "src/support/rng.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::dynamic {
namespace {

using coloring::Color;
using coloring::kNoColor;

graph::Graph sampleGraph(std::size_t n, double avgDeg, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::erdosRenyiAvgDegree(n, avgDeg, rng);
}

std::size_t distinctLiveColors(const DynamicGraph& g,
                               const std::vector<Color>& colors) {
  std::set<Color> palette;
  for (const EdgeId e : g.liveEdges()) palette.insert(colors[e]);
  return palette.size();
}

void expectProperWithinBound(const DynamicGraph& g,
                             const std::vector<Color>& colors,
                             const char* where) {
  const coloring::Verdict verdict = verifyDynamicColoring(g, colors);
  EXPECT_TRUE(verdict.valid) << where << ": " << verdict.reason;
  const std::size_t delta = g.maxDegree();
  if (delta >= 1) {
    EXPECT_LE(distinctLiveColors(g, colors), 2 * delta - 1)
        << where << ": 2D-1 bound violated (D=" << delta << ")";
  }
}

TEST(IncrementalRecolor, FirstRepairIsAFullColoring) {
  const graph::Graph base = sampleGraph(150, 6.0, 19);
  DynamicGraph g(base);
  IncrementalRecolorer recolorer(g, {.seed = 7});
  const RepairStats stats = recolorer.repair();

  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(stats.repairIndex, 0u);
  EXPECT_EQ(stats.recolored.size(), g.numEdges());
  EXPECT_EQ(stats.insertedEdges, g.numEdges());
  for (const EdgeId e : g.liveEdges()) {
    EXPECT_NE(recolorer.colors()[e], kNoColor);
  }
  expectProperWithinBound(g, recolorer.colors(), "initial repair");
}

/// The headline property: proper and within the *current* 2Δ−1 bound after
/// every single churn batch, across several randomized traces.
TEST(IncrementalRecolor, ProperAndBoundedAfterEveryBatch) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const graph::Graph base = sampleGraph(200, 8.0, seed * 101 + 7);
    DynamicGraph g(base);
    IncrementalRecolorer recolorer(g, {.seed = seed});
    ASSERT_TRUE(recolorer.repair().converged);

    EventStream stream({.seed = seed * 31 + 1, .rate = 0.05});
    for (int batch = 0; batch < 12; ++batch) {
      const ChurnBatch churn = stream.nextBatch(g);
      recolorer.applyBatch(churn);
      const RepairStats stats = recolorer.repair();
      ASSERT_TRUE(stats.converged)
          << "seed " << seed << " batch " << batch;
      expectProperWithinBound(g, recolorer.colors(), "after batch");
    }
  }
}

TEST(IncrementalRecolor, UntouchedEdgesKeepTheirColors) {
  const graph::Graph base = sampleGraph(180, 7.0, 29);
  DynamicGraph g(base);
  IncrementalRecolorer recolorer(g, {.seed = 4});
  ASSERT_TRUE(recolorer.repair().converged);

  EventStream stream({.seed = 77, .rate = 0.04});
  for (int batch = 0; batch < 8; ++batch) {
    const std::vector<Color> before = recolorer.colors();
    const ChurnBatch churn = stream.nextBatch(g);
    recolorer.applyBatch(churn);
    const RepairStats stats = recolorer.repair();
    ASSERT_TRUE(stats.converged);

    const std::set<EdgeId> touched(stats.recolored.begin(),
                                   stats.recolored.end());
    for (const EdgeId e : g.liveEdges()) {
      if (touched.count(e) == 0 && e < before.size()) {
        EXPECT_EQ(recolorer.colors()[e], before[e])
            << "edge " << e << " changed color without being repaired";
      }
    }
    // Every surviving insert of the batch was (re)colored this pass.
    for (const ChurnOp& op : churn.ops) {
      if (op.kind == ChurnOp::Kind::Insert && g.alive(op.edge) &&
          g.findEdge(op.u, op.v) == op.edge) {
        EXPECT_TRUE(touched.count(op.edge))
            << "inserted edge " << op.edge << " was not repaired";
      }
    }
  }
}

TEST(IncrementalRecolor, FrontierStaysLocalUnderLightChurn) {
  const graph::Graph base = sampleGraph(2000, 8.0, 41);
  DynamicGraph g(base);
  IncrementalRecolorer recolorer(g, {.seed = 6});
  const RepairStats initial = recolorer.repair();
  ASSERT_TRUE(initial.converged);
  EXPECT_EQ(initial.frontierVertices, g.numVertices())
      << "the initial coloring is a whole-graph repair";

  EventStream stream({.seed = 5, .opsPerBatch = 10});
  const ChurnBatch churn = stream.nextBatch(g);
  recolorer.applyBatch(churn);
  const RepairStats stats = recolorer.repair();
  ASSERT_TRUE(stats.converged);
  // Only endpoints of uncolored (inserted or evicted) edges participate.
  EXPECT_LE(stats.frontierVertices, 2 * stats.recolored.size());
  EXPECT_LT(stats.frontierVertices, g.numVertices() / 10);
  expectProperWithinBound(g, recolorer.colors(), "after light churn");
}

TEST(IncrementalRecolor, EvictionRestoresBoundUnderEraseOnlyChurn) {
  const graph::Graph base = sampleGraph(120, 10.0, 53);
  DynamicGraph g(base);
  IncrementalRecolorer recolorer(g, {.seed = 9});
  ASSERT_TRUE(recolorer.repair().converged);

  EventStream stream({.seed = 8, .rate = 0.2, .insertFraction = 0.0});
  for (int batch = 0; batch < 10; ++batch) {
    const ChurnBatch churn = stream.nextBatch(g);
    ASSERT_EQ(churn.inserts, 0u);
    recolorer.applyBatch(churn);
    const RepairStats stats = recolorer.repair();
    ASSERT_TRUE(stats.converged);
    EXPECT_EQ(stats.insertedEdges, 0u);
    EXPECT_EQ(stats.recolored.size(), stats.evictedEdges);
    expectProperWithinBound(g, recolorer.colors(), "erase-only batch");
    if (g.numEdges() == 0) break;
  }
}

TEST(IncrementalRecolor, SerialAndThreadedRepairsProduceIdenticalColors) {
  const graph::Graph base = sampleGraph(150, 6.0, 61);
  support::ThreadPool pool(4);

  DynamicGraph serialGraph(base);
  DynamicGraph threadedGraph(base);
  IncrementalRecolorer serial(serialGraph, {.seed = 12});
  IncrementalRecolorer threaded(threadedGraph, {.seed = 12, .pool = &pool});

  EventStream serialStream({.seed = 33, .rate = 0.05});
  EventStream threadedStream({.seed = 33, .rate = 0.05});
  for (int batch = 0; batch < 6; ++batch) {
    if (batch > 0) {
      serial.applyBatch(serialStream.nextBatch(serialGraph));
      threaded.applyBatch(threadedStream.nextBatch(threadedGraph));
    }
    const RepairStats a = serial.repair();
    const RepairStats b = threaded.repair();
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(serial.colors(), threaded.colors()) << "batch " << batch;
  }
}

TEST(IncrementalRecolor, ValidityMatchesFromScratchRecoloring) {
  const graph::Graph base = sampleGraph(160, 7.0, 71);
  DynamicGraph g(base);
  IncrementalRecolorer recolorer(g, {.seed = 15});
  ASSERT_TRUE(recolorer.repair().converged);

  EventStream stream({.seed = 21, .rate = 0.06});
  for (int batch = 0; batch < 5; ++batch) {
    recolorer.applyBatch(stream.nextBatch(g));
    ASSERT_TRUE(recolorer.repair().converged);
  }

  // Both the incremental coloring and a from-scratch MaDEC run on the same
  // final topology must pass the same independent checker with the same
  // worst-case palette bound.
  expectProperWithinBound(g, recolorer.colors(), "incremental");
  const FullRecolorResult full = fullRecolor(g, {.seed = 15});
  ASSERT_TRUE(full.converged);
  expectProperWithinBound(g, full.colors, "from scratch");
}

}  // namespace
}  // namespace dima::dynamic
