#include "src/automata/mis.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/generators.hpp"

namespace dima::automata {
namespace {

TEST(Mis, TrivialGraphs) {
  const MisResult empty = maximalIndependentSet(graph::Graph(0), 1);
  EXPECT_TRUE(empty.converged);
  EXPECT_EQ(empty.setSize(), 0u);
  // Isolated vertices all join.
  const MisResult isolated = maximalIndependentSet(graph::Graph(5), 1);
  EXPECT_TRUE(isolated.converged);
  EXPECT_EQ(isolated.setSize(), 5u);
  EXPECT_EQ(isolated.rounds, 0u);
}

TEST(Mis, SingleEdgePicksExactlyOne) {
  graph::Graph g(2, {graph::Edge{0, 1}});
  const MisResult result = maximalIndependentSet(g, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.setSize(), 1u);
  EXPECT_TRUE(isMaximalIndependentSet(g, result.inSet));
}

TEST(Mis, CompleteGraphHasSingletonMis) {
  const graph::Graph g = graph::complete(12);
  const MisResult result = maximalIndependentSet(g, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.setSize(), 1u);
}

TEST(Mis, StarMisIsLeavesOrHub) {
  const graph::Graph g = graph::star(10);
  const MisResult result = maximalIndependentSet(g, 7);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(isMaximalIndependentSet(g, result.inSet));
  // Either the hub alone or all nine leaves.
  EXPECT_TRUE(result.setSize() == 1u || result.setSize() == 9u);
}

TEST(Mis, DeterministicInSeed) {
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 6.0, rng);
  const MisResult a = maximalIndependentSet(g, 99);
  const MisResult b = maximalIndependentSet(g, 99);
  EXPECT_EQ(a.inSet, b.inSet);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Mis, LogarithmicRounds) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(400, 8.0, rng);
  const MisResult result = maximalIndependentSet(g, 11);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.rounds, 30u);  // O(log n) w.h.p.; generous cap
}

class MisSweep : public ::testing::TestWithParam<
                     std::tuple<std::size_t, double, int>> {};

TEST_P(MisSweep, AlwaysIndependentAndMaximal) {
  const auto [n, degree, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 131 + n);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, degree, rng);
  const MisResult result =
      maximalIndependentSet(g, static_cast<std::uint64_t>(seed));
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(isMaximalIndependentSet(g, result.inSet));
}

INSTANTIATE_TEST_SUITE_P(
    Random, MisSweep,
    ::testing::Combine(::testing::Values<std::size_t>(20, 80, 200),
                       ::testing::Values(3.0, 8.0),
                       ::testing::Values(1, 2, 3)));

TEST(IsMaximalIndependentSet, RejectsBadSets) {
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2}});
  EXPECT_TRUE(isMaximalIndependentSet(g, {true, false, true}));
  EXPECT_TRUE(isMaximalIndependentSet(g, {false, true, false}));
  EXPECT_FALSE(isMaximalIndependentSet(g, {true, true, false}));  // adjacent
  EXPECT_FALSE(isMaximalIndependentSet(g, {true, false, false}));  // not max
  EXPECT_FALSE(isMaximalIndependentSet(g, {true, false}));  // wrong size
}

}  // namespace
}  // namespace dima::automata
