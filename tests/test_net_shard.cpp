/// \file test_net_shard.cpp
/// Unit tests for `ShardedNetwork` (net/shard.hpp): send/merge/inbox
/// semantics must match `SyncNetwork` exactly for any partition. The
/// structural accessors (boundary-arc count, shard membership) and the
/// serial `deliverRound` compatibility path are covered here; the full
/// protocol-level bit-identity matrix lives in test_net_determinism.cpp.

#include "src/net/shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/net/network.hpp"

namespace dima::net {
namespace {

struct Ping {
  int value = 0;
};

graph::Graph triangle() {
  return graph::Graph(3, {graph::Edge{0, 1}, graph::Edge{1, 2},
                          graph::Edge{0, 2}});
}

ShardedNetwork<Ping> makeSharded(const graph::Graph& g, std::uint32_t k) {
  return ShardedNetwork<Ping>(
      g, graph::makePartition(g, graph::PartitionKind::Block, k));
}

TEST(ShardedNetwork, BroadcastCrossesShardBoundaries) {
  const graph::Graph g = graph::star(4);  // hub 0, leaves 1..3
  ShardedNetwork<Ping> net = makeSharded(g, 2);
  ASSERT_GT(net.boundaryArcs(), 0u);
  net.broadcast(0, Ping{7});
  net.deliverRound();
  for (NodeId leaf = 1; leaf < 4; ++leaf) {
    ASSERT_EQ(net.inbox(leaf).size(), 1u);
    EXPECT_EQ(net.inbox(leaf).front().from, 0u);
    EXPECT_EQ(net.inbox(leaf).front().msg.value, 7);
  }
  EXPECT_TRUE(net.inbox(0).empty());
}

TEST(ShardedNetwork, UnicastAcrossBoundaryReachesOnlyTarget) {
  const graph::Graph g = triangle();
  ShardedNetwork<Ping> net = makeSharded(g, 3);  // every arc is boundary
  EXPECT_EQ(net.boundaryArcs(), 6u);
  net.unicast(0, 1, Ping{5});
  net.deliverRound();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_TRUE(net.inbox(2).empty());
  EXPECT_TRUE(net.inbox(0).empty());
}

TEST(ShardedNetwork, StaleBoundaryRecordsDoNotResurface) {
  // A record written in round r must not be re-merged in round r+1: the
  // epoch tag, not a clear pass, is what retires it.
  const graph::Graph g = triangle();
  ShardedNetwork<Ping> net = makeSharded(g, 3);
  net.broadcast(0, Ping{1});
  net.deliverRound();
  EXPECT_FALSE(net.inbox(1).empty());
  net.deliverRound();  // nothing sent this round
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_TRUE(net.inbox(2).empty());
}

TEST(ShardedNetwork, PerShardMergeMatchesSerialDelivery) {
  // Drive the split-phase API the sharded engine uses (mergeInbound per
  // shard, then advanceEpochs) and check it equals deliverRound().
  const graph::Graph g = triangle();
  ShardedNetwork<Ping> net = makeSharded(g, 2);
  net.broadcast(0, Ping{10});
  net.broadcast(2, Ping{12});
  for (std::uint32_t s = 0; s < net.shardCount(); ++s) net.mergeInbound(s);
  net.advanceEpochs();
  EXPECT_EQ(net.inbox(1).size(), 2u);  // from 0 and 2
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(0).front().msg.value, 12);
}

TEST(ShardedNetwork, SingleShardHasNoBoundaryArcs) {
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(50, 4.0, rng);
  ShardedNetwork<Ping> net = makeSharded(g, 1);
  EXPECT_EQ(net.boundaryArcs(), 0u);
  EXPECT_EQ(net.boundaryArcFraction(), 0.0);
}

TEST(ShardedNetwork, InboxOrderIsIncidenceOrderRegardlessOfShards) {
  // Receiver 2 of P4 plus chords: senders arrive in ascending-sender order
  // for both substrates, whatever shard each sender lives in.
  support::Rng rng(6);
  const graph::Graph g = graph::erdosRenyiAvgDegree(64, 6.0, rng);
  for (const std::uint32_t k : {2u, 5u, 8u}) {
    SyncNetwork<Ping> ref(g);
    ShardedNetwork<Ping> net = makeSharded(g, k);
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      if (g.degree(u) == 0) continue;
      ref.broadcast(u, Ping{static_cast<int>(u)});
      net.broadcast(u, Ping{static_cast<int>(u)});
    }
    ref.deliverRound();
    net.deliverRound();
    for (NodeId v = 0; v < g.numVertices(); ++v) {
      const auto a = ref.inbox(v);
      const auto b = net.inbox(v);
      ASSERT_EQ(a.size(), b.size()) << "node " << v << ", " << k << " shards";
      auto ai = a.begin();
      auto bi = b.begin();
      for (; ai != a.end(); ++ai, ++bi) {
        EXPECT_EQ((*ai).from, (*bi).from) << "node " << v;
        EXPECT_EQ((*ai).msg.value, (*bi).msg.value) << "node " << v;
      }
    }
    const Counters ca = ref.counters();
    const Counters cb = net.counters();
    EXPECT_EQ(ca.broadcasts, cb.broadcasts);
    EXPECT_EQ(ca.messagesDelivered, cb.messagesDelivered);
  }
}

TEST(ShardedNetwork, CountersFoldAcrossShards) {
  const graph::Graph g = triangle();
  ShardedNetwork<Ping> net = makeSharded(g, 3);
  net.broadcast(0, Ping{1});
  net.unicast(1, 2, Ping{2});
  net.deliverRound();
  const Counters c = net.counters();
  EXPECT_EQ(c.broadcasts, 1u);
  EXPECT_EQ(c.unicasts, 1u);
  EXPECT_EQ(c.messagesDelivered, 3u);
  EXPECT_EQ(c.commRounds, 1u);
}

TEST(ShardedNetworkDeath, DoubleSendInOneRoundIsRejected) {
  const graph::Graph g = triangle();
  ShardedNetwork<Ping> net = makeSharded(g, 2);
  net.broadcast(0, Ping{1});
  EXPECT_DEATH(net.broadcast(0, Ping{2}), "allowance");
}

TEST(ShardedNetworkDeath, UnicastWithoutLinkIsRejected) {
  const graph::Graph g = graph::path(3);  // 0-1-2
  ShardedNetwork<Ping> net = makeSharded(g, 2);
  EXPECT_DEATH(net.unicast(0, 2, Ping{1}), "without a link");
}

TEST(ShardedNetworkDeath, PartitionMustCoverTopology) {
  const graph::Graph g = triangle();
  EXPECT_DEATH(ShardedNetwork<Ping>(g, graph::makeBlockPartition(2, 2)),
               "partition covers");
}

}  // namespace
}  // namespace dima::net
