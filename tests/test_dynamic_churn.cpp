#include "src/dynamic/churn.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "src/graph/generators.hpp"
#include "src/support/rng.hpp"

namespace dima::dynamic {
namespace {

graph::Graph sampleGraph(std::size_t n, double avgDeg, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::erdosRenyiAvgDegree(n, avgDeg, rng);
}

std::set<std::pair<VertexId, VertexId>> edgeSet(const DynamicGraph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const EdgeId e : g.liveEdges()) {
    const Edge& edge = g.edge(e);
    edges.insert({std::min(edge.u, edge.v), std::max(edge.u, edge.v)});
  }
  return edges;
}

TEST(EventStream, SameSeedReproducesTheWholeTrace) {
  const graph::Graph base = sampleGraph(100, 6.0, 17);
  DynamicGraph g1(base);
  DynamicGraph g2(base);
  EventStream s1({.seed = 42, .rate = 0.05});
  EventStream s2({.seed = 42, .rate = 0.05});

  for (int batch = 0; batch < 8; ++batch) {
    const ChurnBatch b1 = s1.nextBatch(g1);
    const ChurnBatch b2 = s2.nextBatch(g2);
    ASSERT_EQ(b1.ops.size(), b2.ops.size());
    for (std::size_t i = 0; i < b1.ops.size(); ++i) {
      EXPECT_EQ(b1.ops[i].kind, b2.ops[i].kind);
      EXPECT_EQ(b1.ops[i].u, b2.ops[i].u);
      EXPECT_EQ(b1.ops[i].v, b2.ops[i].v);
      EXPECT_EQ(b1.ops[i].edge, b2.ops[i].edge);
    }
  }
  EXPECT_EQ(edgeSet(g1), edgeSet(g2));
  EXPECT_EQ(s1.batchesGenerated(), 8u);
}

TEST(EventStream, BatchRecordsExactlyWhatWasApplied) {
  const graph::Graph base = sampleGraph(60, 4.0, 5);
  DynamicGraph g(base);
  EventStream stream({.seed = 9, .opsPerBatch = 25});
  const std::size_t edgesBefore = g.numEdges();
  const ChurnBatch batch = stream.nextBatch(g);

  EXPECT_EQ(batch.inserts + batch.erases, batch.ops.size());
  EXPECT_LE(batch.ops.size(), 25u);
  EXPECT_EQ(g.numEdges(), edgesBefore + batch.inserts - batch.erases);
  for (const ChurnOp& op : batch.ops) {
    ASSERT_NE(op.edge, kNoEdge);
    ASSERT_NE(op.u, op.v);
    if (op.kind == ChurnOp::Kind::Insert) {
      // Inserted edges carry the id the overlay assigned; the edge may have
      // been erased again by a later op in the same batch, so only check
      // consistency when it is still alive.
      if (g.alive(op.edge)) {
        EXPECT_EQ(g.findEdge(op.u, op.v), op.edge);
      }
    }
  }
}

TEST(EventStream, RateSizesBatchesRelativeToCurrentEdgeCount) {
  const graph::Graph base = sampleGraph(200, 10.0, 31);
  DynamicGraph g(base);
  EventStream stream({.seed = 3, .rate = 0.1});
  const std::size_t m = g.numEdges();
  const ChurnBatch batch = stream.nextBatch(g);
  const auto target = static_cast<std::size_t>(0.1 * static_cast<double>(m));
  EXPECT_GE(batch.ops.size(), 1u);
  EXPECT_LE(batch.ops.size(), target + 1);
}

TEST(EventStream, InsertFractionExtremesAreRespected) {
  const graph::Graph base = sampleGraph(80, 5.0, 13);
  {
    DynamicGraph g(base);
    EventStream inserts({.seed = 1, .opsPerBatch = 30, .insertFraction = 1.0});
    const ChurnBatch batch = inserts.nextBatch(g);
    EXPECT_EQ(batch.erases, 0u);
    EXPECT_GT(batch.inserts, 0u);
  }
  {
    DynamicGraph g(base);
    EventStream erases({.seed = 1, .opsPerBatch = 30, .insertFraction = 0.0});
    const ChurnBatch batch = erases.nextBatch(g);
    EXPECT_EQ(batch.inserts, 0u);
    EXPECT_EQ(batch.erases, batch.ops.size());
    EXPECT_GT(batch.erases, 0u);
  }
}

TEST(EventStream, EraseOnlyStreamDrainsToEmptyWithoutSpinning) {
  DynamicGraph g(6);
  g.insertEdge(0, 1);
  g.insertEdge(2, 3);
  EventStream stream({.seed = 4, .opsPerBatch = 10, .insertFraction = 0.0});
  const ChurnBatch batch = stream.nextBatch(g);
  EXPECT_EQ(batch.erases, 2u);  // further erase draws are unsatisfiable
  EXPECT_EQ(g.numEdges(), 0u);
  // A batch on the now-empty graph must terminate (all ops skipped).
  const ChurnBatch empty = stream.nextBatch(g);
  EXPECT_EQ(empty.ops.size(), 0u);
}

}  // namespace
}  // namespace dima::dynamic
