#include "src/dynamic/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/support/rng.hpp"

namespace dima::dynamic {
namespace {

graph::Graph sampleGraph(std::size_t n, double avgDeg, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::erdosRenyiAvgDegree(n, avgDeg, rng);
}

/// Brute-force mirror of the overlay used to cross-check every query.
std::size_t bruteMaxDegree(const DynamicGraph& g) {
  std::size_t best = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    best = std::max(best, g.degree(v));
  }
  return best;
}

TEST(DynamicGraph, MirrorsBaseGraphAndKeepsEdgeIds) {
  const graph::Graph base = sampleGraph(80, 6.0, 11);
  const DynamicGraph g(base);

  EXPECT_EQ(g.numVertices(), base.numVertices());
  EXPECT_EQ(g.numEdges(), base.numEdges());
  EXPECT_EQ(g.edgeSlots(), base.numEdges());
  EXPECT_EQ(g.maxDegree(), base.maxDegree());
  for (VertexId v = 0; v < base.numVertices(); ++v) {
    EXPECT_EQ(g.degree(v), base.degree(v));
  }
  for (EdgeId e = 0; e < base.numEdges(); ++e) {
    ASSERT_TRUE(g.alive(e));
    EXPECT_EQ(g.edge(e).u, base.edge(e).u);
    EXPECT_EQ(g.edge(e).v, base.edge(e).v);
    EXPECT_EQ(g.findEdge(base.edge(e).u, base.edge(e).v), e);
  }
  EXPECT_TRUE(g.dirtyVertices().empty());
}

TEST(DynamicGraph, InsertRejectsDuplicatesAndSelfLoops) {
  DynamicGraph g(4);
  const EdgeId e = g.insertEdge(0, 1);
  ASSERT_NE(e, kNoEdge);
  EXPECT_EQ(g.insertEdge(1, 0), kNoEdge);  // duplicate, either orientation
  EXPECT_EQ(g.insertEdge(2, 2), kNoEdge);  // self loop
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
}

TEST(DynamicGraph, EraseRecyclesIdsAndKeepsSlotsStable) {
  DynamicGraph g(6);
  const EdgeId a = g.insertEdge(0, 1);
  const EdgeId b = g.insertEdge(1, 2);
  const EdgeId c = g.insertEdge(2, 3);
  ASSERT_EQ(g.edgeSlots(), 3u);

  EXPECT_EQ(g.eraseEdge(1, 2), b);
  EXPECT_FALSE(g.alive(b));
  EXPECT_TRUE(g.alive(a));
  EXPECT_TRUE(g.alive(c));
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_EQ(g.eraseEdge(1, 2), kNoEdge);  // already gone
  EXPECT_FALSE(g.eraseEdge(b));           // dead id

  // The freed id is reused; the slot bound does not grow.
  const EdgeId d = g.insertEdge(4, 5);
  EXPECT_EQ(d, b);
  EXPECT_EQ(g.edgeSlots(), 3u);
  EXPECT_EQ(g.edge(d).u, 4u);
  EXPECT_EQ(g.edge(d).v, 5u);
}

TEST(DynamicGraph, DirtyTracksChurnEndpointsWithoutDuplicates) {
  DynamicGraph g(5);
  g.insertEdge(0, 1);
  g.insertEdge(1, 2);
  g.eraseEdge(0, 1);
  const auto dirty = g.dirtyVertices();
  const std::set<VertexId> got(dirty.begin(), dirty.end());
  EXPECT_EQ(got, (std::set<VertexId>{0, 1, 2}));
  EXPECT_EQ(dirty.size(), 3u);  // no duplicates despite repeat touches
  EXPECT_TRUE(g.isDirty(1));
  EXPECT_FALSE(g.isDirty(4));

  g.clearDirty();
  EXPECT_TRUE(g.dirtyVertices().empty());
  EXPECT_FALSE(g.isDirty(1));
  g.insertEdge(3, 4);
  EXPECT_EQ(g.dirtyVertices().size(), 2u);
}

TEST(DynamicGraph, MaxDegreeStaysExactUnderRandomChurn) {
  const graph::Graph base = sampleGraph(60, 5.0, 23);
  DynamicGraph g(base);
  support::Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    if (rng.uniform01() < 0.5 && g.numEdges() > 0) {
      g.eraseEdge(g.sampleEdge(rng));
    } else {
      const auto u = static_cast<VertexId>(rng.index(g.numVertices()));
      const auto v = static_cast<VertexId>(rng.index(g.numVertices()));
      g.insertEdge(u, v);
    }
    ASSERT_EQ(g.maxDegree(), bruteMaxDegree(g)) << "after step " << step;
  }
}

TEST(DynamicGraph, SampleEdgeOnlyReturnsLiveEdges) {
  DynamicGraph g(10);
  std::vector<EdgeId> ids;
  for (VertexId v = 1; v < 10; ++v) ids.push_back(g.insertEdge(0, v));
  for (std::size_t i = 0; i < ids.size(); i += 2) g.eraseEdge(ids[i]);

  support::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const EdgeId e = g.sampleEdge(rng);
    EXPECT_TRUE(g.alive(e));
  }
  EXPECT_EQ(g.liveEdges().size(), g.numEdges());
  for (const EdgeId e : g.liveEdges()) EXPECT_TRUE(g.alive(e));
}

TEST(DynamicGraph, SnapshotMatchesOverlayTopology) {
  const graph::Graph base = sampleGraph(50, 4.0, 3);
  DynamicGraph g(base);
  support::Rng rng(5);
  for (int step = 0; step < 120; ++step) {
    if (rng.uniform01() < 0.4 && g.numEdges() > 0) {
      g.eraseEdge(g.sampleEdge(rng));
    } else {
      g.insertEdge(static_cast<VertexId>(rng.index(g.numVertices())),
                   static_cast<VertexId>(rng.index(g.numVertices())));
    }
  }

  std::vector<EdgeId> denseToOverlay;
  const graph::Graph snap = g.snapshot(&denseToOverlay);
  ASSERT_EQ(snap.numVertices(), g.numVertices());
  ASSERT_EQ(snap.numEdges(), g.numEdges());
  ASSERT_EQ(denseToOverlay.size(), snap.numEdges());
  EXPECT_EQ(snap.maxDegree(), g.maxDegree());

  std::set<std::pair<VertexId, VertexId>> overlayEdges;
  for (const EdgeId e : g.liveEdges()) {
    const Edge& edge = g.edge(e);
    overlayEdges.insert({std::min(edge.u, edge.v), std::max(edge.u, edge.v)});
  }
  for (EdgeId dense = 0; dense < snap.numEdges(); ++dense) {
    const Edge& edge = snap.edge(dense);
    EXPECT_TRUE(overlayEdges.count(
        {std::min(edge.u, edge.v), std::max(edge.u, edge.v)}));
    const EdgeId overlayId = denseToOverlay[dense];
    ASSERT_TRUE(g.alive(overlayId));
    EXPECT_EQ(g.findEdge(edge.u, edge.v), overlayId);
  }
}

TEST(DynamicGraph, AverageDegreeReflectsLiveEdges) {
  DynamicGraph g(4);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 0.0);
  g.insertEdge(0, 1);
  g.insertEdge(2, 3);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 1.0);
  g.eraseEdge(0, 1);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 0.5);
}

}  // namespace
}  // namespace dima::dynamic
