#include "src/coloring/color.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"

namespace dima::coloring {
namespace {

using support::DynamicBitset;
using support::Rng;

/// A random forbidden set with `setBits` colors drawn from [0, domain).
DynamicBitset randomForbidden(Rng& rng, std::size_t domain,
                              std::size_t setBits) {
  DynamicBitset forbidden(domain);
  while (forbidden.count() < setBits) {
    forbidden.set(rng.index(domain));
  }
  return forbidden;
}

/// The first `window` free colors of `forbidden`, in increasing order.
std::vector<Color> freePrefix(const DynamicBitset& forbidden,
                              std::size_t window) {
  std::vector<Color> out;
  for (std::size_t c = 0; out.size() < window; ++c) {
    if (!forbidden.test(c)) out.push_back(static_cast<Color>(c));
  }
  return out;
}

TEST(ChooseProposalColor, LowestIndexIsExactlyFirstClear) {
  Rng rng(101);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const DynamicBitset forbidden = randomForbidden(rng, 40, trial % 30);
    Rng draw(55);
    EXPECT_EQ(chooseProposalColor(ColorPolicy::LowestIndex, forbidden,
                                  static_cast<std::uint32_t>(trial), draw),
              static_cast<Color>(forbidden.firstClear()));
  }
}

TEST(ChooseProposalColor, NeverProposesAForbiddenColor) {
  Rng rng(202);
  Rng draw(303);
  for (std::size_t trial = 0; trial < 500; ++trial) {
    const DynamicBitset forbidden = randomForbidden(rng, 32, trial % 28);
    for (const ColorPolicy policy :
         {ColorPolicy::LowestIndex, ColorPolicy::ExpandingWindow}) {
      const Color c = chooseProposalColor(
          policy, forbidden, static_cast<std::uint32_t>(trial % 5), draw);
      ASSERT_GE(c, 0);
      EXPECT_FALSE(forbidden.test(static_cast<std::size_t>(c)))
          << "policy proposed forbidden color " << c;
    }
  }
}

TEST(ChooseProposalColor, LowestIndexRespectsThePaletteBound) {
  // The 2Δ−1 argument: when an edge {u,v} is colored, used(u) ∪ used(v)
  // holds at most 2Δ−2 colors, so the lowest free index is ≤ 2Δ−2 — i.e.
  // the proposal is always ≤ the number of forbidden colors.
  Rng rng(404);
  Rng draw(1);
  for (std::size_t delta = 1; delta <= 12; ++delta) {
    const std::size_t maxForbidden = 2 * delta - 2;
    for (std::size_t trial = 0; trial < 50; ++trial) {
      const std::size_t k =
          maxForbidden == 0 ? 0 : rng.index(maxForbidden + 1);
      const DynamicBitset forbidden = randomForbidden(rng, 64, k);
      const Color c =
          chooseProposalColor(ColorPolicy::LowestIndex, forbidden, 0, draw);
      EXPECT_LE(static_cast<std::size_t>(c), forbidden.count());
      EXPECT_LE(static_cast<std::size_t>(c), 2 * delta - 2);
    }
  }
}

TEST(ChooseProposalColor, ExpandingWindowStaysInTheWindow) {
  Rng rng(505);
  Rng draw(606);
  for (std::size_t trial = 0; trial < 300; ++trial) {
    const DynamicBitset forbidden = randomForbidden(rng, 24, trial % 20);
    const auto failures = static_cast<std::uint32_t>(trial % 7);
    const std::vector<Color> window = freePrefix(forbidden, 1 + failures);
    const Color c = chooseProposalColor(ColorPolicy::ExpandingWindow,
                                        forbidden, failures, draw);
    bool inWindow = false;
    for (const Color w : window) inWindow = inWindow || (w == c);
    EXPECT_TRUE(inWindow) << "color " << c << " outside the first "
                          << (1 + failures) << " free colors";
  }
}

TEST(ChooseProposalColor, ZeroFailuresWindowDegeneratesToLowestIndex) {
  Rng rng(707);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    const DynamicBitset forbidden = randomForbidden(rng, 30, trial % 25);
    Rng draw(static_cast<std::uint64_t>(trial));
    EXPECT_EQ(chooseProposalColor(ColorPolicy::ExpandingWindow, forbidden, 0,
                                  draw),
              static_cast<Color>(forbidden.firstClear()));
  }
}

TEST(ChooseProposalColor, DeterministicInTheRngState) {
  Rng rng(808);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    const DynamicBitset forbidden = randomForbidden(rng, 20, trial % 15);
    const auto failures = static_cast<std::uint32_t>(trial % 6);
    Rng a(static_cast<std::uint64_t>(trial) * 17 + 1);
    Rng b = a;  // identical state → identical draw
    EXPECT_EQ(chooseProposalColor(ColorPolicy::ExpandingWindow, forbidden,
                                  failures, a),
              chooseProposalColor(ColorPolicy::ExpandingWindow, forbidden,
                                  failures, b));
  }
}

TEST(ChooseProposalColor, EveryWindowColorIsReachable) {
  // With 3 failures the window holds 4 free colors; across many draws each
  // must appear (the ablation bench relies on the window actually spreading
  // proposals, not collapsing to the lowest index).
  DynamicBitset forbidden(8);
  forbidden.set(0);
  forbidden.set(2);
  const std::vector<Color> window = freePrefix(forbidden, 4);  // 1,3,4,5
  Rng draw(909);
  std::vector<int> hits(window.size(), 0);
  for (std::size_t trial = 0; trial < 400; ++trial) {
    const Color c =
        chooseProposalColor(ColorPolicy::ExpandingWindow, forbidden, 3, draw);
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (window[i] == c) ++hits[i];
    }
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GT(hits[i], 0) << "window color " << window[i] << " never drawn";
  }
}

}  // namespace
}  // namespace dima::coloring
