#include "src/coloring/vertex_coloring.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/generators.hpp"

namespace dima::coloring {
namespace {

TEST(VertexColoring, TrivialGraphs) {
  const VertexColoringResult empty =
      colorVerticesDistributed(graph::Graph(0), 1);
  EXPECT_TRUE(empty.converged);
  const VertexColoringResult isolated =
      colorVerticesDistributed(graph::Graph(4), 1);
  EXPECT_TRUE(isolated.converged);
  EXPECT_EQ(isolated.colorsUsed(), 1u);  // all take color 0
}

TEST(VertexColoring, BipartiteUsesFewColors) {
  // Even cycle is 2-chromatic; the randomized protocol won't necessarily
  // find 2 but must stay within Δ+1 = 3.
  const VertexColoringResult result =
      colorVerticesDistributed(graph::cycle(12), 3);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(isProperVertexColoring(graph::cycle(12), result.colors));
  EXPECT_LE(result.colorsUsed(), 3u);
}

TEST(VertexColoring, CompleteGraphNeedsN) {
  const graph::Graph g = graph::complete(9);
  const VertexColoringResult result = colorVerticesDistributed(g, 5);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(isProperVertexColoring(g, result.colors));
  EXPECT_EQ(result.colorsUsed(), 9u);  // Δ+1 = n, all distinct
}

TEST(VertexColoring, DeterministicInSeed) {
  support::Rng rng(2);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 5.0, rng);
  const VertexColoringResult a = colorVerticesDistributed(g, 77);
  const VertexColoringResult b = colorVerticesDistributed(g, 77);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(VertexColoring, FastConvergence) {
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(300, 8.0, rng);
  const VertexColoringResult result = colorVerticesDistributed(g, 9);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.rounds, 30u);
}

class VertexColoringSweep : public ::testing::TestWithParam<
                                std::tuple<std::size_t, double, int>> {};

TEST_P(VertexColoringSweep, ProperWithinDeltaPlusOne) {
  const auto [n, degree, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 151 + n);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, degree, rng);
  const VertexColoringResult result =
      colorVerticesDistributed(g, static_cast<std::uint64_t>(seed));
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(isProperVertexColoring(g, result.colors));
  // Every node's palette is [0, deg(u)], so the global bound is Δ+1.
  EXPECT_LE(result.colorsUsed(), g.maxDegree() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Random, VertexColoringSweep,
    ::testing::Combine(::testing::Values<std::size_t>(20, 80, 200),
                       ::testing::Values(3.0, 8.0),
                       ::testing::Values(1, 2, 3)));

TEST(IsProperVertexColoring, Checks) {
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2}});
  EXPECT_TRUE(isProperVertexColoring(g, {0, 1, 0}));
  EXPECT_FALSE(isProperVertexColoring(g, {0, 0, 1}));
  EXPECT_FALSE(isProperVertexColoring(g, {0, kNoColor, 0}));
  EXPECT_TRUE(isProperVertexColoring(g, {0, kNoColor, 0}, true));
  EXPECT_FALSE(isProperVertexColoring(g, {0, 1}));  // wrong size
}

}  // namespace
}  // namespace dima::coloring
