#include "src/baselines/pal.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

namespace dima::baselines {
namespace {

TEST(Pal, ProperColoringOnRandomGraphs) {
  support::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(100, 7.0, rng);
    PalOptions options;
    options.seed = static_cast<std::uint64_t>(i);
    const PalResult result = palEdgeColoring(g, options);
    ASSERT_TRUE(result.converged);
    const coloring::Verdict verdict =
        coloring::verifyEdgeColoring(g, result.colors);
    EXPECT_TRUE(verdict.valid) << verdict.reason;
  }
}

TEST(Pal, EmptyGraphConvergesImmediately) {
  const PalResult result = palEdgeColoring(graph::Graph(5));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Pal, DeterministicInSeed) {
  support::Rng rng(2);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 5.0, rng);
  PalOptions options;
  options.seed = 42;
  const PalResult a = palEdgeColoring(g, options);
  const PalResult b = palEdgeColoring(g, options);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Pal, ConvergesInFewRounds) {
  // O(log n) w.h.p. — assert a generous cap to catch regressions.
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(200, 8.0, rng);
  const PalResult result = palEdgeColoring(g);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.rounds, 60u);
}

TEST(Pal, LargerPaletteConvergesFasterOrEqual) {
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(150, 10.0, rng);
  PalOptions tight;
  tight.epsilon = 0.0;
  tight.seed = 5;
  PalOptions roomy;
  roomy.epsilon = 1.0;
  roomy.seed = 5;
  const PalResult a = palEdgeColoring(g, tight);
  const PalResult b = palEdgeColoring(g, roomy);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  // Roomier palettes mean fewer collisions; allow a small tolerance since
  // the claim is statistical.
  EXPECT_LE(b.rounds, a.rounds + 4);
}

TEST(Pal, UsesMoreColorsThanGreedyButProper) {
  // PAL trades color quality for speed: it may exceed Δ+1 but stays within
  // the (1+ε)Δ palette (plus the rare overflow fallback).
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(120, 9.0, rng);
  const PalResult result = palEdgeColoring(g);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors));
  EXPECT_LE(result.colorsUsed, 2 * g.maxDegree());
}

TEST(Pal, StarGraphStress) {
  // All edges conflict pairwise: the hardest case for random proposals.
  const PalResult result = palEdgeColoring(graph::star(30));
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(coloring::verifyEdgeColoring(graph::star(30), result.colors));
}

TEST(PalDeathTest, NegativeEpsilonRejected) {
  PalOptions options;
  options.epsilon = -0.5;
  EXPECT_DEATH(palEdgeColoring(graph::star(3), options), "epsilon");
}

}  // namespace
}  // namespace dima::baselines
