#include "src/automata/matching.hpp"

#include <gtest/gtest.h>

#include "src/automata/phase.hpp"
#include "src/graph/generators.hpp"

namespace dima::automata {
namespace {

TEST(Matching, EmptyIsValidEverywhere) {
  const graph::Graph g = graph::complete(4);
  EXPECT_TRUE(isMatching(g, Matching{}));
  EXPECT_FALSE(isMaximalMatching(g, Matching{}));
}

TEST(Matching, DisjointEdgesAreAMatching) {
  graph::Graph g(4, {graph::Edge{0, 1}, graph::Edge{2, 3},
                     graph::Edge{1, 2}});
  Matching m({0, 1});  // {0,1} and {2,3}
  EXPECT_TRUE(isMatching(g, m));
  EXPECT_TRUE(isMaximalMatching(g, m));
}

TEST(Matching, SharedEndpointRejected) {
  graph::Graph g(3, {graph::Edge{0, 1}, graph::Edge{1, 2}});
  EXPECT_FALSE(isMatching(g, Matching({0, 1})));
}

TEST(Matching, DuplicateAndBogusIdsRejected) {
  graph::Graph g(4, {graph::Edge{0, 1}, graph::Edge{2, 3}});
  EXPECT_FALSE(isMatching(g, Matching({0, 0})));
  EXPECT_FALSE(isMatching(g, Matching({7})));
}

TEST(Matching, NonMaximalDetected) {
  graph::Graph g(4, {graph::Edge{0, 1}, graph::Edge{2, 3}});
  EXPECT_TRUE(isMatching(g, Matching({0})));
  EXPECT_FALSE(isMaximalMatching(g, Matching({0})));  // {2,3} still free
}

TEST(Matching, MatchedVerticesDeduplicated) {
  graph::Graph g(4, {graph::Edge{0, 1}, graph::Edge{2, 3}});
  const auto verts = matchedVertices(g, Matching({0, 1}));
  EXPECT_EQ(verts, (std::vector<graph::VertexId>{0, 1, 2, 3}));
}

TEST(Phase, NamesAreStable) {
  EXPECT_STREQ(phaseName(Phase::Choose), "C");
  EXPECT_STREQ(phaseName(Phase::Invite), "I");
  EXPECT_STREQ(phaseName(Phase::Listen), "L");
  EXPECT_STREQ(phaseName(Phase::Respond), "R");
  EXPECT_STREQ(phaseName(Phase::Wait), "W");
  EXPECT_STREQ(phaseName(Phase::Update), "U");
  EXPECT_STREQ(phaseName(Phase::Exchange), "E");
  EXPECT_STREQ(phaseName(Phase::Done), "D");
}

}  // namespace
}  // namespace dima::automata
