#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::coloring {
namespace {

/// Property sweep over (family, size, density, seed): every MaDEC run must
/// produce a proper coloring with at most 2Δ−1 colors (Propositions 2 & 3)
/// and terminate within a generous O(Δ) round budget (Proposition 1).
class MadecProperty : public ::testing::TestWithParam<
                          std::tuple<const char*, std::size_t, int>> {
 protected:
  graph::Graph makeGraph() const {
    const auto [family, n, seed] = GetParam();
    support::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + n);
    const std::string f = family;
    if (f == "erdos-sparse") return graph::erdosRenyiAvgDegree(n, 4.0, rng);
    if (f == "erdos-dense") return graph::erdosRenyiAvgDegree(n, 12.0, rng);
    if (f == "scale-free") return graph::barabasiAlbert(n, 3, 1.0, rng);
    if (f == "small-world") {
      return graph::wattsStrogatz(n, 6, 0.25, rng);
    }
    if (f == "tree") return graph::randomTree(n, rng);
    if (f == "regular") return graph::randomRegular(n, 5 - (n % 2), rng);
    if (f == "complete") return graph::complete(std::min<std::size_t>(n, 24));
    ADD_FAILURE() << "unknown family " << f;
    return graph::Graph(0);
  }

  std::uint64_t runSeed() const {
    const auto [family, n, seed] = GetParam();
    return support::mix64(static_cast<std::uint64_t>(seed), n);
  }
};

TEST_P(MadecProperty, ProperColoringWithinWorstCaseBound) {
  const graph::Graph g = makeGraph();
  MadecOptions options;
  options.seed = runSeed();
  const EdgeColoringResult result = colorEdgesMadec(g, options);

  ASSERT_TRUE(result.metrics.converged);
  const Verdict verdict = verifyEdgeColoring(g, result.colors);
  EXPECT_TRUE(verdict.valid) << verdict.reason;

  const std::size_t delta = g.maxDegree();
  if (delta >= 1) {
    EXPECT_GE(result.colorsUsed(), delta == 1 ? 1 : delta)
        << "cannot beat the Vizing lower bound";
    EXPECT_LE(result.colorsUsed(), 2 * delta - 1)
        << "Proposition 3 bound violated";
  }
}

TEST_P(MadecProperty, TerminatesInLinearDeltaRounds) {
  const graph::Graph g = makeGraph();
  if (g.maxDegree() == 0) GTEST_SKIP() << "edgeless sample";
  MadecOptions options;
  options.seed = runSeed();
  const EdgeColoringResult result = colorEdgesMadec(g, options);
  ASSERT_TRUE(result.metrics.converged);
  // Mean is ~2Δ; allow a wide tail (12Δ + 30) so the test is not flaky
  // while still catching super-linear blowups.
  EXPECT_LE(result.metrics.computationRounds,
            12 * g.maxDegree() + 30)
      << "n=" << g.numVertices() << " D=" << g.maxDegree();
}

INSTANTIATE_TEST_SUITE_P(
    Families, MadecProperty,
    ::testing::Combine(
        ::testing::Values("erdos-sparse", "erdos-dense", "scale-free",
                          "small-world", "tree", "regular", "complete"),
        ::testing::Values<std::size_t>(24, 72, 160),
        ::testing::Values(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char*, std::size_t, int>>& paramInfo) {
      std::string name = std::get<0>(paramInfo.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(paramInfo.param)) + "_s" +
             std::to_string(std::get<2>(paramInfo.param));
    });

/// The paper's worst-case witness (§II-B Prop. 3 discussion): a high-degree
/// node surrounded by equally high-degree neighbors. MaDEC must stay within
/// 2Δ−1 colors no matter the seed.
TEST(MadecWorstCase, CompleteBipartiteStressStaysBounded) {
  support::Rng rng(404);
  const graph::Graph g = graph::randomBipartite(12, 12, 1.0, rng);  // K12,12
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    MadecOptions options;
    options.seed = seed;
    const EdgeColoringResult result = colorEdgesMadec(g, options);
    ASSERT_TRUE(result.metrics.converged);
    EXPECT_TRUE(verifyEdgeColoring(g, result.colors));
    EXPECT_LE(result.colorsUsed(), 2 * g.maxDegree() - 1);
  }
}

/// Conjecture 2 statistically: on moderate Erdős–Rényi graphs the run
/// should almost always use at most Δ+1 colors.
TEST(MadecQuality, MostRunsWithinDeltaPlusOne) {
  support::Rng rng(500);
  std::size_t within = 0;
  constexpr std::size_t kRuns = 30;
  for (std::size_t i = 0; i < kRuns; ++i) {
    const graph::Graph g = graph::erdosRenyiAvgDegree(120, 8.0, rng);
    MadecOptions options;
    options.seed = 1000 + i;
    const EdgeColoringResult result = colorEdgesMadec(g, options);
    if (result.colorsUsed() <= g.maxDegree() + 1) ++within;
  }
  EXPECT_GE(within, kRuns - 2) << "Conjecture 2 should hold almost always";
}

}  // namespace
}  // namespace dima::coloring
