#include "src/experiments/figures.hpp"

#include <gtest/gtest.h>

namespace dima::exp {
namespace {

// The full 50-runs-per-config sweeps belong to the bench harness; the tests
// run scaled-down versions (3 runs per config) and assert the properties
// that are scale-robust: validity of every run, presence of all outputs,
// and the linear-in-Δ shape. Claim thresholds that need the full sample
// size (e.g. "≥97% of runs within Δ+1") are exercised by the benches.

void expectWellFormed(const FigureReport& report) {
  EXPECT_FALSE(report.table.empty());
  EXPECT_FALSE(report.plot.empty());
  EXPECT_FALSE(report.csv.empty());
  EXPECT_FALSE(report.claims.empty());
  EXPECT_GT(report.records.size(), 0u);
  EXPECT_EQ(report.summary.invalidRuns, 0u);
  EXPECT_EQ(report.summary.unconverged, 0u);
  // Rendered report mentions the figure id and every claim.
  const std::string text = report.render();
  EXPECT_NE(text.find(report.id), std::string::npos);
  for (const ClaimCheck& claim : report.claims) {
    EXPECT_NE(text.find(claim.claim), std::string::npos);
  }
  // CSV has a header plus one row per record.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(report.csv.begin(),
                                          report.csv.end(), '\n'));
  EXPECT_EQ(lines, report.records.size() + 1);
}

TEST(Figures, Figure3SmallScale) {
  const FigureReport report = runFigure3(101, 3);
  expectWellFormed(report);
  EXPECT_EQ(report.id, "FIG3");
  EXPECT_EQ(report.records.size(), 18u);  // 6 configs × 3
  EXPECT_GT(report.summary.roundsVsDelta.slope(), 0.5);
  EXPECT_LT(report.summary.roundsVsDelta.slope(), 6.0);
}

TEST(Figures, Figure4SmallScale) {
  const FigureReport report = runFigure4(102, 3);
  expectWellFormed(report);
  EXPECT_EQ(report.id, "FIG4");
  // Scale-free quality claim: the paper observed ≤ Δ always; at any scale
  // no run should exceed Δ by more than 1.
  for (const RunRecord& rec : report.records) {
    EXPECT_LE(rec.colorExcess, 1);
  }
}

TEST(Figures, Figure5SmallScale) {
  const FigureReport report = runFigure5(103, 3);
  expectWellFormed(report);
  EXPECT_EQ(report.id, "FIG5");
  // The 2Δ−1 bound must hold in every run (Proposition 3).
  for (const RunRecord& rec : report.records) {
    if (rec.delta >= 2) {
      EXPECT_LT(rec.colors, 2 * rec.delta - 1);
    }
  }
}

TEST(Figures, Figure6SmallScale) {
  const FigureReport report = runFigure6(104, 2);
  expectWellFormed(report);
  EXPECT_EQ(report.id, "FIG6");
  for (const RunRecord& rec : report.records) {
    EXPECT_EQ(rec.conflicts, 0u) << "strict mode leaked a conflict";
  }
}

TEST(Figures, ReportsAreSeedDeterministic) {
  const FigureReport a = runFigure3(55, 2);
  const FigureReport b = runFigure3(55, 2);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.table, b.table);
}

}  // namespace
}  // namespace dima::exp
