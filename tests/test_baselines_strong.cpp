#include "src/baselines/strong_greedy.hpp"

#include <gtest/gtest.h>

#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

namespace dima::baselines {
namespace {

TEST(StrongGreedy, ValidStrongColoringOnFamilies) {
  support::Rng rng(1);
  const graph::Graph graphs[] = {
      graph::path(8),
      graph::cycle(9),
      graph::star(8),
      graph::complete(6),
      graph::grid(4, 4),
      graph::erdosRenyiAvgDegree(60, 5.0, rng),
  };
  for (const graph::Graph& g : graphs) {
    const graph::Digraph d(g);
    const StrongGreedyResult result = greedyStrongArcColoring(d);
    const coloring::Verdict verdict =
        coloring::verifyStrongArcColoring(d, result.colors);
    EXPECT_TRUE(verdict.valid) << verdict.reason;
    EXPECT_GE(result.colorsUsed, graph::strongColoringLowerBound(g));
  }
}

TEST(StrongGreedy, EmptyDigraph) {
  const StrongGreedyResult result =
      greedyStrongArcColoring(graph::Digraph(graph::Graph(3)));
  EXPECT_TRUE(result.colors.empty());
  EXPECT_EQ(result.colorsUsed, 0u);
}

TEST(StrongGreedy, PathOfThreeEdgesIsAClique) {
  // Every arc pair in the 3-edge path conflicts ⇒ all 6 arcs distinct.
  const graph::Digraph d(graph::path(4));
  const StrongGreedyResult result = greedyStrongArcColoring(d);
  EXPECT_EQ(result.colorsUsed, 6u);
}

TEST(StrongGreedy, LongPathReusesColors) {
  const graph::Digraph d(graph::path(30));
  const StrongGreedyResult result = greedyStrongArcColoring(d);
  EXPECT_TRUE(coloring::verifyStrongArcColoring(d, result.colors));
  EXPECT_LT(result.colorsUsed, 12u);  // constant for paths
}

TEST(StrongGreedy, RandomOrderAlsoValidAndDeterministic) {
  support::Rng rng(2);
  const graph::Digraph d(graph::erdosRenyiAvgDegree(50, 4.0, rng));
  const StrongGreedyResult a =
      greedyStrongArcColoring(d, ArcOrder::Random, 7);
  const StrongGreedyResult b =
      greedyStrongArcColoring(d, ArcOrder::Random, 7);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_TRUE(coloring::verifyStrongArcColoring(d, a.colors));
}

TEST(StrongGreedy, GreedyNeverBeatenByMoreThanStructure) {
  // Sanity: id-order greedy stays within a constant factor of the clique
  // lower bound on bounded-degree random graphs.
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(100, 6.0, rng);
  const graph::Digraph d(g);
  const StrongGreedyResult result = greedyStrongArcColoring(d);
  EXPECT_LE(result.colorsUsed, 3 * graph::strongColoringLowerBound(g) + 6);
}

}  // namespace
}  // namespace dima::baselines
