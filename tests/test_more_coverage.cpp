/// \file test_more_coverage.cpp
/// Final coverage batch: round-cap behaviour, CLI generator families, and
/// mode-specific trace properties that the main suites don't pin down.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/baselines/pal.hpp"
#include "src/cli/commands.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/net/trace.hpp"

namespace dima {
namespace {

TEST(Caps, MadecRoundCapYieldsValidPartialColoring) {
  support::Rng rng(1);
  const graph::Graph g = graph::erdosRenyiAvgDegree(80, 8.0, rng);
  coloring::MadecOptions options;
  options.seed = 2;
  options.maxCycles = 1;  // one cycle can color at most a matching
  const auto result = coloring::colorEdgesMadec(g, options);
  EXPECT_FALSE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 1u);
  EXPECT_FALSE(result.complete());
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors, true));
  EXPECT_TRUE(result.halfCommitted.empty());  // reliable links: no halves
}

TEST(Caps, PalRoundCapReportsNonConvergence) {
  baselines::PalOptions options;
  options.seed = 3;
  options.maxRounds = 1;
  const graph::Graph g = graph::star(40);  // all edges conflict: slow start
  const auto result = baselines::palEdgeColoring(g, options);
  EXPECT_EQ(result.rounds, 1u);
  // One round colors at most a few edges of a star; whatever exists is
  // proper.
  EXPECT_TRUE(coloring::verifyEdgeColoring(g, result.colors, true));
}

TEST(Caps, Dima2EdRoundCapSafePartial) {
  support::Rng rng(4);
  const graph::Graph g = graph::erdosRenyiAvgDegree(50, 5.0, rng);
  const graph::Digraph d(g);
  coloring::Dima2EdOptions options;
  options.seed = 5;
  options.maxCycles = 2;
  const auto result = coloring::colorArcsDima2Ed(d, options);
  EXPECT_FALSE(result.metrics.converged);
  EXPECT_TRUE(coloring::verifyStrongArcColoring(d, result.colors, true));
}

TEST(Trace, PaperModeNeverAborts) {
  // The abort machinery exists only in strict mode; the faithful mode must
  // not touch it (that's exactly why it leaks conflicts).
  support::Rng rng(9);
  const graph::Graph g = graph::erdosRenyiAvgDegree(60, 8.0, rng);
  const graph::Digraph d(g);
  net::TraceLog trace;
  trace.enable();
  coloring::Dima2EdOptions options;
  options.seed = 0;
  options.mode = coloring::Dima2EdMode::Paper;
  options.trace = &trace;
  (void)coloring::colorArcsDima2Ed(d, options);
  for (const net::TraceEvent& e : trace.events()) {
    ASSERT_NE(e.kind, net::TraceKind::Aborted);
  }
}

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun runCli(const std::vector<std::string>& tokens) {
  cli::Args args(tokens);
  std::ostringstream out, err;
  CliRun r;
  r.code = cli::runCommand(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(CliFamilies, EveryGeneratorFamilyColorsCleanly) {
  const std::vector<std::vector<std::string>> cases = {
      {"color", "--family", "gnp", "--n", "40", "--p", "0.1"},
      {"color", "--family", "ba", "--n", "40", "--m", "2"},
      {"color", "--family", "tree", "--n", "40"},
      {"color", "--family", "regular", "--n", "20", "--deg", "4"},
      {"color", "--family", "complete", "--n", "8"},
      {"color", "--family", "cycle", "--n", "9"},
      {"color", "--family", "path", "--n", "9"},
      {"color", "--family", "star", "--n", "9"},
      {"color", "--family", "grid", "--rows", "4", "--cols", "5"},
      {"color", "--family", "geometric", "--n", "40", "--radius", "0.3"},
  };
  for (const auto& tokens : cases) {
    const CliRun r = runCli(tokens);
    EXPECT_EQ(r.code, 0) << tokens[2] << ": " << r.err;
    EXPECT_NE(r.out.find("valid: yes"), std::string::npos) << tokens[2];
  }
  EXPECT_EQ(runCli({"color", "--family", "nonsense"}).code, 1);
}

TEST(CliFamilies, GenWritesDotCompatibleColorFile) {
  const std::string dir = ::testing::TempDir();
  const std::string dot = dir + "coverage.dot";
  const CliRun r = runCli({"color", "--family", "cycle", "--n", "6",
                           "--dot-out", dot});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream in(dot);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("graph dimacol"), std::string::npos);
  EXPECT_NE(text.find("--"), std::string::npos);
  std::remove(dot.c_str());
}

TEST(Determinism, HalfCommitListIsStableUnderDrops) {
  // The half-commit diagnosis must be reproducible for debugging.
  support::Rng rng(6);
  const graph::Graph g = graph::erdosRenyiAvgDegree(50, 6.0, rng);
  coloring::MadecOptions options;
  options.seed = 7;
  options.faults.dropProbability = 0.2;
  options.maxCycles = 100;
  const auto a = coloring::colorEdgesMadec(g, options);
  const auto b = coloring::colorEdgesMadec(g, options);
  EXPECT_EQ(a.halfCommitted, b.halfCommitted);
  EXPECT_EQ(a.colors, b.colors);
}

}  // namespace
}  // namespace dima
