#include "src/sim/fuzz.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/repro.hpp"

namespace dima::sim {
namespace {

/// The committed minimal reproducer of the planted abort-echo bug (also in
/// tests/corpus/): the run is a pure function of these fields, so the
/// violation is pinned forever.
FuzzCase pinnedMutantCase() {
  FuzzCase c;
  c.protocol = FuzzProtocol::StrongMadecMutant;
  c.numVertices = 5;
  c.edges = {{1, 3}, {2, 4}, {3, 4}};
  c.seed = 6153782575289481321ULL;
  c.maxCycles = 512;
  return c;
}

FuzzCase smallHonestCase(FuzzProtocol protocol) {
  FuzzCase c;
  c.protocol = protocol;
  c.numVertices = 6;
  c.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}};
  c.seed = 11;
  return c;
}

TEST(Fuzz, ProtocolNamesRoundTrip) {
  constexpr FuzzProtocol kAll[] = {
      FuzzProtocol::Madec, FuzzProtocol::Dima2Ed, FuzzProtocol::StrongMadec,
      FuzzProtocol::StrongMadecMutant, FuzzProtocol::Incremental};
  for (const FuzzProtocol p : kAll) {
    FuzzProtocol parsed{};
    ASSERT_TRUE(fuzzProtocolFromName(fuzzProtocolName(p), &parsed))
        << fuzzProtocolName(p);
    EXPECT_EQ(parsed, p);
  }
  FuzzProtocol parsed{};
  EXPECT_FALSE(fuzzProtocolFromName("bogus", &parsed));
}

TEST(Fuzz, BuildCaseGraphNormalizesEdges) {
  FuzzCase c;
  c.numVertices = 4;
  c.edges = {{2, 1}, {1, 2}, {3, 0}, {0, 3}, {1, 0}};
  const graph::Graph g = buildCaseGraph(c);
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_NE(g.findEdge(1, 2), graph::kNoEdge);
  EXPECT_NE(g.findEdge(0, 3), graph::kNoEdge);
  EXPECT_NE(g.findEdge(0, 1), graph::kNoEdge);
}

TEST(Fuzz, MonitorOptionsMatchProtocolSemantics) {
  const FuzzCase madec = smallHonestCase(FuzzProtocol::Madec);
  const graph::Graph g = buildCaseGraph(madec);
  const MonitorOptions m = monitorOptionsFor(madec, g);
  EXPECT_EQ(m.semantics, Semantics::ProperEdge);
  EXPECT_EQ(m.paletteBound, 2 * g.maxDegree() - 1);
  EXPECT_FALSE(m.lossy);

  FuzzCase strong = smallHonestCase(FuzzProtocol::StrongMadec);
  strong.chaos.dropProbability = 0.1;
  const MonitorOptions s = monitorOptionsFor(strong, buildCaseGraph(strong));
  EXPECT_EQ(s.semantics, Semantics::StrongEdge);
  EXPECT_EQ(s.paletteBound, 0u);  // expanding window: unbounded by design
  EXPECT_TRUE(s.lossy);

  const FuzzCase arcs = smallHonestCase(FuzzProtocol::Dima2Ed);
  EXPECT_EQ(monitorOptionsFor(arcs, buildCaseGraph(arcs)).semantics,
            Semantics::StrongArc);
}

TEST(Fuzz, HonestProtocolsRunClean) {
  for (const FuzzProtocol p : {FuzzProtocol::Madec, FuzzProtocol::Dima2Ed,
                               FuzzProtocol::StrongMadec}) {
    const CaseOutcome outcome = runCase(smallHonestCase(p));
    EXPECT_TRUE(outcome.safe()) << fuzzProtocolName(p);
    EXPECT_TRUE(outcome.converged) << fuzzProtocolName(p);
    EXPECT_GT(outcome.eventsSeen, 0u) << fuzzProtocolName(p);
  }
}

TEST(Fuzz, IncrementalChurnRunsClean) {
  FuzzCase c = smallHonestCase(FuzzProtocol::Incremental);
  c.churnBatches = 3;
  const CaseOutcome outcome = runCase(c);
  EXPECT_TRUE(outcome.safe()) << outcome.violations.front().toString();
  EXPECT_TRUE(outcome.converged);
}

TEST(Fuzz, RecordedFaultsReplayIdentically) {
  FuzzCase c = smallHonestCase(FuzzProtocol::Madec);
  c.chaos.dropProbability = 0.3;
  c.chaos.duplicateProbability = 0.1;
  c.chaos.seed = 9;
  std::vector<net::MessageFault> fired;
  const CaseOutcome probabilistic = runCase(c, &fired);
  EXPECT_FALSE(fired.empty());

  FuzzCase scripted = c;
  scripted.chaos = net::ChaosModel{};
  scripted.chaos.script = fired;
  const CaseOutcome replayed = runCase(scripted);
  EXPECT_EQ(replayed.eventsSeen, probabilistic.eventsSeen);
  EXPECT_EQ(replayed.converged, probabilistic.converged);
  EXPECT_EQ(replayed.violations.size(), probabilistic.violations.size());
}

TEST(Fuzz, RandomFuzzHonestProtocolsAreSafe) {
  RandomFuzzOptions options;
  options.seed = 7;
  options.iterations = 300;
  options.maxVertices = 8;
  const RandomFuzzResult result = randomFuzz(options);
  EXPECT_EQ(result.casesRun, 300u);
  EXPECT_EQ(result.failures, 0u)
      << result.firstOutcome.violations.front().toString();
}

TEST(Fuzz, ExhaustiveSweepPathsCyclesCliqueIsSafe) {
  // The CI-budget slice of the sweep the CLI runs in full: every ≤2-drop
  // script, every crash, and every crash × drop product on a path, a cycle,
  // and K4.
  std::vector<FuzzCase> bases;
  FuzzCase path;
  path.protocol = FuzzProtocol::Madec;
  path.numVertices = 4;
  path.edges = {{0, 1}, {1, 2}, {2, 3}};
  bases.push_back(path);
  FuzzCase cycle;
  cycle.protocol = FuzzProtocol::Madec;
  cycle.numVertices = 5;
  cycle.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}};
  bases.push_back(cycle);
  FuzzCase clique;
  clique.protocol = FuzzProtocol::Madec;
  clique.numVertices = 4;
  clique.edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  bases.push_back(clique);

  const SweepReport report = exhaustiveSweep(bases);
  EXPECT_GT(report.casesRun, 1000u);
  EXPECT_TRUE(report.allSafe())
      << report.failures.front().outcome.violations.front().toString();
}

TEST(Fuzz, PinnedMutantCaseViolatesHandshake) {
  const CaseOutcome outcome = runCase(pinnedMutantCase());
  ASSERT_FALSE(outcome.safe());
  EXPECT_EQ(outcome.violations.front().code,
            ViolationCode::HandshakeViolation);

  // Same topology and seed under the honest protocol: clean, so the
  // monitor is reacting to the planted bug, not to the scenario.
  FuzzCase honest = pinnedMutantCase();
  honest.protocol = FuzzProtocol::StrongMadec;
  EXPECT_TRUE(runCase(honest).safe());
}

TEST(Fuzz, MutationSelfTestFindsAndShrinksThePlantedBug) {
  RandomFuzzOptions options;
  options.protocols = {FuzzProtocol::StrongMadecMutant};
  options.seed = 1;
  options.iterations = 600;
  options.maxVertices = 8;
  const RandomFuzzResult result = randomFuzz(options);
  ASSERT_TRUE(result.found()) << "mutant survived 600 cases";

  const ShrinkResult shrunk = shrinkFailure(result.firstFailure);
  EXPECT_EQ(shrunk.code, ViolationCode::HandshakeViolation);
  EXPECT_LE(shrunk.minimized.numVertices, 6u);
  EXPECT_GT(shrunk.runsUsed, 0u);
  ASSERT_FALSE(shrunk.outcome.safe());
  EXPECT_EQ(shrunk.outcome.violations.front().code, shrunk.code);

  // Determinism: the whole pipeline is a pure function of the seed, so a
  // second search + shrink must emit a byte-identical repro file.
  const RandomFuzzResult again = randomFuzz(options);
  ASSERT_TRUE(again.found());
  const ShrinkResult shrunkAgain = shrinkFailure(again.firstFailure);
  EXPECT_EQ(serializeRepro(makeRepro(shrunk.minimized, shrunk.outcome)),
            serializeRepro(makeRepro(shrunkAgain.minimized,
                                     shrunkAgain.outcome)));
}

TEST(Fuzz, ShrinkDropsAnIrrelevantInboxPermutation) {
  FuzzCase noisy = pinnedMutantCase();
  noisy.chaos.permuteInboxes = true;
  ASSERT_FALSE(runCase(noisy).safe());

  const ShrinkResult shrunk = shrinkFailure(noisy);
  EXPECT_EQ(shrunk.code, ViolationCode::HandshakeViolation);
  EXPECT_FALSE(shrunk.minimized.chaos.permuteInboxes);
  EXPECT_LE(shrunk.minimized.numVertices, noisy.numVertices);
}

TEST(Repro, SerializationRoundTrips) {
  const FuzzCase c = pinnedMutantCase();
  const Repro repro = makeRepro(c, runCase(c));
  EXPECT_TRUE(repro.expectViolation);
  const std::string text = serializeRepro(repro);

  Repro parsed;
  std::string error;
  ASSERT_TRUE(parseRepro(text, &parsed, &error)) << error;
  EXPECT_EQ(serializeRepro(parsed), text);
  EXPECT_EQ(parsed.fuzzCase.numVertices, c.numVertices);
  EXPECT_EQ(parsed.fuzzCase.edges, c.edges);
  EXPECT_EQ(parsed.fuzzCase.seed, c.seed);
  EXPECT_EQ(parsed.expectCode, ViolationCode::HandshakeViolation);
}

TEST(Repro, SerializationKeepsChaosKnobs) {
  FuzzCase c = smallHonestCase(FuzzProtocol::Dima2Ed);
  c.chaos.dropProbability = 0.125;
  c.chaos.linkDrops.push_back({0, 1, 0.5});
  c.chaos.crashes.push_back({2, 7});
  c.chaos.script.push_back(
      {net::MessageFault::Kind::Duplicate, 3, 4, 5});
  c.chaos.permuteInboxes = true;
  c.churnBatches = 0;
  Repro repro;
  repro.fuzzCase = c;
  repro.expectViolation = false;

  Repro parsed;
  std::string error;
  ASSERT_TRUE(parseRepro(serializeRepro(repro), &parsed, &error)) << error;
  EXPECT_EQ(parsed.fuzzCase.chaos.dropProbability, 0.125);
  EXPECT_EQ(parsed.fuzzCase.chaos.linkDrops, c.chaos.linkDrops);
  EXPECT_EQ(parsed.fuzzCase.chaos.crashes, c.chaos.crashes);
  EXPECT_EQ(parsed.fuzzCase.chaos.script, c.chaos.script);
  EXPECT_TRUE(parsed.fuzzCase.chaos.permuteInboxes);
}

TEST(Repro, ParserRejectsMalformedFilesWithLineNumbers) {
  Repro parsed;
  std::string error;
  EXPECT_FALSE(parseRepro("not-a-repro\n", &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(parseRepro(
      "dimacol-repro v1\nnodes 2\nedge 0 5\nexpect safe\n", &parsed, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos);

  EXPECT_FALSE(parseRepro(
      "dimacol-repro v1\nnodes 2\nfrobnicate\nexpect safe\n", &parsed,
      &error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos);

  // Missing the expect verdict.
  EXPECT_FALSE(parseRepro("dimacol-repro v1\nnodes 2\n", &parsed, &error));
  EXPECT_NE(error.find("expect"), std::string::npos);
}

TEST(Repro, ReplayMatchesPinnedOutcomes) {
  const FuzzCase mutant = pinnedMutantCase();
  const ReplayResult bad = replayRepro(makeRepro(mutant, runCase(mutant)));
  EXPECT_TRUE(bad.matched) << bad.summary;

  const FuzzCase honest = smallHonestCase(FuzzProtocol::Madec);
  const ReplayResult good = replayRepro(makeRepro(honest, runCase(honest)));
  EXPECT_TRUE(good.matched) << good.summary;

  // A stale expectation is reported as a mismatch, not an error.
  Repro wrong = makeRepro(honest, runCase(honest));
  wrong.expectViolation = true;
  wrong.expectCode = ViolationCode::ColorReuse;
  const ReplayResult stale = replayRepro(wrong);
  EXPECT_FALSE(stale.matched);
  EXPECT_NE(stale.summary.find("MISMATCH"), std::string::npos);
}

}  // namespace
}  // namespace dima::sim
