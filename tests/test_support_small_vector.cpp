#include "src/support/small_vector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace dima::support {
namespace {

TEST(SmallVector, StartsEmptyInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.usesInlineStorage());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.usesInlineStorage());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.usesInlineStorage());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, FrontBackAndPop) {
  SmallVector<int, 2> v{1, 2, 3};
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, EraseAtPreservesOrder) {
  SmallVector<int, 8> v{10, 20, 30, 40};
  v.eraseAt(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
}

TEST(SmallVector, EraseAtUnorderedSwapsLast) {
  SmallVector<int, 8> v{10, 20, 30, 40};
  v.eraseAtUnordered(0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 40);
}

TEST(SmallVector, ClearKeepsCapacity) {
  SmallVector<int, 2> v{1, 2, 3, 4};
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVector, CopyConstructDeepCopies) {
  SmallVector<std::string, 2> a{"alpha", "beta", "gamma"};
  SmallVector<std::string, 2> b(a);
  b[0] = "changed";
  EXPECT_EQ(a[0], "alpha");
  EXPECT_EQ(b[0], "changed");
  EXPECT_EQ(b.size(), 3u);
}

TEST(SmallVector, CopyAssign) {
  SmallVector<std::string, 2> a{"x", "y"};
  SmallVector<std::string, 2> b{"1", "2", "3", "4"};
  b = a;
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], "y");
}

TEST(SmallVector, MoveConstructStealsHeap) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), data);  // heap buffer moved, not copied
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, MoveConstructInlineCopiesElements) {
  SmallVector<std::string, 4> a{"a", "b"};
  SmallVector<std::string, 4> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "a");
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, MoveAssign) {
  SmallVector<int, 2> a{1, 2, 3, 4, 5};
  SmallVector<int, 2> b{9};
  b = std::move(a);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[4], 5);
}

TEST(SmallVector, WorksWithMoveOnlyTypes) {
  SmallVector<std::unique_ptr<int>, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(std::make_unique<int>(i));
  EXPECT_EQ(*v[9], 9);
  SmallVector<std::unique_ptr<int>, 2> w(std::move(v));
  EXPECT_EQ(*w[3], 3);
}

TEST(SmallVector, DestructorRunsElementDestructors) {
  auto counter = std::make_shared<int>(0);
  // Move-aware probe: only probes still holding the counter tally their
  // destruction, so moved-from temporaries and grow() relocations don't
  // inflate the count.
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> p) : c(std::move(p)) {}
    Probe(Probe&& other) noexcept : c(std::move(other.c)) {}
    Probe& operator=(Probe&& other) noexcept {
      c = std::move(other.c);
      return *this;
    }
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    SmallVector<Probe, 2> v;
    for (int i = 0; i < 5; ++i) v.push_back(Probe{counter});
  }
  EXPECT_EQ(*counter, 5);
}

TEST(SmallVector, EqualityComparesElements) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 4> bSameType{1, 2, 3};
  (void)bSameType;  // different N is a different type; compare same-N only
  SmallVector<int, 2> b{1, 2, 3};
  SmallVector<int, 2> c{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 3> v;
  for (int i = 0; i < 20; ++i) v.push_back(i * i);
  int idx = 0;
  for (int x : v) {
    ASSERT_EQ(x, idx * idx);
    ++idx;
  }
  EXPECT_EQ(idx, 20);
}

TEST(SmallVector, ReserveAvoidsLaterReallocation) {
  SmallVector<int, 2> v;
  v.reserve(64);
  const int* data = v.data();
  for (int i = 0; i < 64; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), data);
}

}  // namespace
}  // namespace dima::support
