#include "src/support/log.hpp"

#include <gtest/gtest.h>

#include "src/support/stopwatch.hpp"
#include "src/support/version.hpp"

namespace dima::support {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::Debug);
  EXPECT_EQ(logLevel(), LogLevel::Debug);
  setLogLevel(LogLevel::Off);
  EXPECT_EQ(logLevel(), LogLevel::Off);
  setLogLevel(original);
}

TEST(Log, LevelNamesAreDistinct) {
  EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
  EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
  EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
  EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
  EXPECT_STREQ(logLevelName(LogLevel::Off), "off");
}

TEST(Log, MacroRespectsThreshold) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::Off);
  int evaluations = 0;
  // The expression must not even be evaluated below the threshold.
  DIMA_LOG_DEBUG("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  setLogLevel(LogLevel::Debug);
  DIMA_LOG_DEBUG("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 1);
  setLogLevel(original);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  // Keep the loop observable without deprecated volatile compound ops.
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(watch.seconds(), 0.0);
  EXPECT_GE(watch.millis(), watch.seconds());  // ms ≥ s numerically
  const double before = watch.seconds();
  watch.restart();
  EXPECT_LE(watch.seconds(), before + 1.0);
}

TEST(Version, IsConsistent) {
  EXPECT_EQ(kVersionMajor, 1);
  const std::string expected = std::to_string(kVersionMajor) + "." +
                               std::to_string(kVersionMinor) + "." +
                               std::to_string(kVersionPatch);
  EXPECT_EQ(expected, kVersionString);
}

}  // namespace
}  // namespace dima::support
