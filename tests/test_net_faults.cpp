#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/net/network.hpp"
#include "src/net/trace.hpp"

namespace dima::net {
namespace {

struct Ping {
  int value = 0;
};

TEST(FaultModel, DefaultIsReliable) {
  FaultModel faults;
  EXPECT_FALSE(faults.perturbs());
  FaultModel dropping{.dropProbability = 0.1};
  EXPECT_TRUE(dropping.perturbs());
}

TEST(FaultModel, DropRateMatchesProbability) {
  const graph::Graph g = graph::complete(20);
  FaultModel faults;
  faults.dropProbability = 0.3;
  SyncNetwork<Ping> net(g, faults);
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    for (NodeId v = 0; v < 20; ++v) net.broadcast(v, Ping{r});
    net.deliverRound();
  }
  const auto& c = net.counters();
  const auto attempts = c.messagesDelivered + c.messagesDropped -
                        c.messagesDuplicated;
  EXPECT_EQ(attempts, 20u * 19u * kRounds);
  const double dropRate = static_cast<double>(c.messagesDropped) /
                          static_cast<double>(attempts);
  EXPECT_NEAR(dropRate, 0.3, 0.02);
}

TEST(FaultModel, DuplicatesArriveTwice) {
  const graph::Graph g = graph::complete(10);
  FaultModel faults;
  faults.duplicateProbability = 0.5;
  SyncNetwork<Ping> net(g, faults);
  for (int r = 0; r < 100; ++r) {
    for (NodeId v = 0; v < 10; ++v) net.broadcast(v, Ping{r});
    net.deliverRound();
  }
  const auto& c = net.counters();
  EXPECT_GT(c.messagesDuplicated, 0u);
  EXPECT_EQ(c.messagesDelivered,
            100u * 10 * 9 + c.messagesDuplicated);
}

TEST(FaultModel, FaultsAreDeterministicInSeed) {
  const graph::Graph g = graph::complete(8);
  auto run = [&](std::uint64_t seed) {
    FaultModel faults;
    faults.dropProbability = 0.25;
    faults.seed = seed;
    SyncNetwork<Ping> net(g, faults);
    for (int r = 0; r < 50; ++r) {
      for (NodeId v = 0; v < 8; ++v) net.broadcast(v, Ping{r});
      net.deliverRound();
    }
    return net.counters().messagesDropped;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultModel, ZeroProbabilityDropsNothing) {
  const graph::Graph g = graph::cycle(5);
  SyncNetwork<Ping> net(g, FaultModel{.dropProbability = 0.0,
                                      .duplicateProbability = 0.0});
  for (int r = 0; r < 20; ++r) {
    for (NodeId v = 0; v < 5; ++v) net.broadcast(v, Ping{r});
    net.deliverRound();
  }
  EXPECT_EQ(net.counters().messagesDropped, 0u);
  EXPECT_EQ(net.counters().messagesDuplicated, 0u);
}

TEST(FaultModel, CombinedDropAndDuplicateCountersArePinned) {
  // Exact per-seed audit of the fault path: drops and duplicates drawn from
  // one keyed stream must never drift, or every recorded chaos script and
  // committed repro file silently changes meaning. The attempt identity
  // delivered + dropped − duplicated is re-checked alongside the pins.
  const graph::Graph g = graph::complete(10);
  FaultModel faults;
  faults.dropProbability = 0.25;
  faults.duplicateProbability = 0.15;
  faults.seed = 2026;
  SyncNetwork<Ping> net(g, faults);
  constexpr int kRounds = 50;
  for (int r = 0; r < kRounds; ++r) {
    for (NodeId v = 0; v < 10; ++v) net.broadcast(v, Ping{r});
    net.deliverRound();
  }
  const Counters c = net.counters();
  constexpr std::uint64_t kAttempts = 10u * 9u * kRounds;
  EXPECT_EQ(c.messagesDelivered + c.messagesDropped - c.messagesDuplicated,
            kAttempts);
  EXPECT_EQ(c.commRounds, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(c.broadcasts, 10u * kRounds);
  EXPECT_EQ(c.messagesDropped, 1108u);
  EXPECT_EQ(c.messagesDuplicated, 530u);
  EXPECT_EQ(c.messagesDelivered, 3922u);
  EXPECT_EQ(c.messagesCorrupted, 0u);
}

TEST(TraceLog, DisabledRecordIsNoOp) {
  TraceLog trace;
  trace.record(0, 1, TraceKind::InviteSent, 2, 3);
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceLog, RecordsAndRenders) {
  TraceLog trace;
  trace.enable();
  trace.record(0, 1, TraceKind::InviteSent, 2, 5);
  trace.record(0, 2, TraceKind::ResponseSent, 1, 5);
  trace.record(1, 1, TraceKind::EdgeColored, 2, 5);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.countInCycle(0, TraceKind::InviteSent), 1u);
  EXPECT_EQ(trace.countInCycle(0, TraceKind::EdgeColored), 0u);
  const std::string text = trace.render();
  EXPECT_NE(text.find("invite-sent"), std::string::npos);
  EXPECT_NE(text.find("cycle 1"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceLog, KindNamesAreDistinct) {
  EXPECT_STRNE(traceKindName(TraceKind::InviteSent),
               traceKindName(TraceKind::ResponseSent));
  EXPECT_STRNE(traceKindName(TraceKind::Aborted),
               traceKindName(TraceKind::NodeDone));
}

}  // namespace
}  // namespace dima::net
