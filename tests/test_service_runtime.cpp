#include "src/service/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/dynamic/incremental.hpp"
#include "src/service/driver.hpp"
#include "src/service/session.hpp"
#include "src/service/wire.hpp"

namespace dima::service {
namespace {

CommandFrame hello(std::uint32_t n, std::uint32_t seq = 1) {
  CommandFrame f = makeFrame<ServiceKind::Hello, CommandFrame>();
  f.seq = seq;
  f.a = kServiceWireVersion;
  f.b = n;
  return f;
}

CommandFrame edgeCmd(ServiceKind kind, std::uint32_t u, std::uint32_t v,
                     std::uint32_t seq = 0) {
  CommandFrame f;
  f.kind = kind;
  f.seq = seq;
  f.a = u;
  f.b = v;
  return f;
}

TEST(ServiceRuntime, CommandsBeforeHelloAreBadState) {
  ColoringService svc;
  const ReplyFrame r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 0, 1, 7));
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadState));
  EXPECT_EQ(r.seq, 7u);
  EXPECT_FALSE(svc.ready());
}

TEST(ServiceRuntime, HelloNegotiatesVersionAndVertexCount) {
  ColoringService svc;
  CommandFrame wrongVersion = hello(16);
  wrongVersion.a = kServiceWireVersion + 5;
  ReplyFrame r = svc.handle(wrongVersion);
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadVersion));

  r = svc.handle(hello(0));  // n = 0 is meaningless for a fresh service
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadArgument));

  r = svc.handle(hello(16));
  ASSERT_EQ(r.kind, ServiceKind::HelloOk);
  EXPECT_EQ(r.a, kServiceWireVersion);
  EXPECT_EQ(r.b, 16u);
  EXPECT_TRUE(svc.ready());

  // Re-negotiating an open session is a state error.
  r = svc.handle(hello(16));
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadState));
}

TEST(ServiceRuntime, AckStatusesCoverTheMutationOutcomes) {
  ColoringService svc;
  ASSERT_EQ(svc.handle(hello(8)).kind, ServiceKind::HelloOk);

  ReplyFrame r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 2, 3));
  EXPECT_EQ(r.kind, ServiceKind::Ack);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Applied));
  const std::uint32_t edgeId = r.a;
  EXPECT_NE(edgeId, kNoServiceEdge);

  r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 3, 2));  // same edge
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Duplicate));

  r = svc.handle(edgeCmd(ServiceKind::EraseEdge, 4, 5));  // never inserted
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Missing));

  r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 6, 6));  // self-loop
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Rejected));
  r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 1, 8));  // out of range
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Rejected));

  r = svc.handle(edgeCmd(ServiceKind::EraseEdge, 2, 3));
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(AckStatus::Applied));
  EXPECT_EQ(r.a, edgeId);
}

TEST(ServiceRuntime, BatchThresholdForcesAnEpoch) {
  ServiceOptions opts;
  opts.policy.maxBatch = 4;
  opts.policy.maxStaleness = 100;  // keep queries from forcing epochs
  ColoringService svc(opts);
  ASSERT_EQ(svc.handle(hello(32)).kind, ServiceKind::HelloOk);

  svc.handle(edgeCmd(ServiceKind::InsertEdge, 0, 1));
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 1, 2));
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 2, 3));
  EXPECT_EQ(svc.scheduler().epochsRun(), 0u);
  EXPECT_EQ(svc.scheduler().backlog(), 3u);

  svc.handle(edgeCmd(ServiceKind::InsertEdge, 3, 4));  // fourth: epoch fires
  EXPECT_EQ(svc.scheduler().epochsRun(), 1u);
  EXPECT_EQ(svc.scheduler().backlog(), 0u);
  EXPECT_EQ(svc.lastEpoch().batch, 4u);
  EXPECT_TRUE(svc.lastEpoch().converged);
  EXPECT_EQ(svc.scheduler().backlogPeak(), 4u);
}

TEST(ServiceRuntime, StalenessBoundGovernsQueries) {
  ServiceOptions opts;
  opts.policy.maxBatch = 100;
  opts.policy.maxStaleness = 2;
  ColoringService svc(opts);
  ASSERT_EQ(svc.handle(hello(32)).kind, ServiceKind::HelloOk);

  svc.handle(edgeCmd(ServiceKind::InsertEdge, 0, 1));
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 1, 2));

  // Backlog 2 ≤ maxStaleness: the query tolerates the lag and the fresh
  // edge reports Pending (mutated topology, deferred recoloring).
  ReplyFrame r = svc.handle(edgeCmd(ServiceKind::QueryColor, 0, 1));
  EXPECT_EQ(r.kind, ServiceKind::ColorInfo);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ColorStatus::Pending));
  EXPECT_EQ(r.b, 2u);  // reported staleness = backlog
  EXPECT_EQ(svc.scheduler().epochsRun(), 0u);

  // Backlog 3 > maxStaleness: the query forces the epoch first and then
  // sees a colored edge over a drained backlog.
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 2, 3));
  r = svc.handle(edgeCmd(ServiceKind::QueryColor, 0, 1));
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ColorStatus::Colored));
  EXPECT_GE(r.color, 0);
  EXPECT_EQ(r.b, 0u);
  EXPECT_EQ(svc.scheduler().epochsRun(), 1u);

  r = svc.handle(edgeCmd(ServiceKind::QueryColor, 5, 6));
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ColorStatus::NoSuchEdge));
}

TEST(ServiceRuntime, StatsBlockKeepsItsDocumentedOrder) {
  ServiceOptions opts;
  opts.policy.maxBatch = 2;
  ColoringService svc(opts);
  ASSERT_EQ(svc.handle(hello(16)).kind, ServiceKind::HelloOk);
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 0, 1));
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 1, 2));  // epoch
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 2, 3));
  svc.handle(edgeCmd(ServiceKind::QueryColor, 0, 1));  // forces another

  const ReplyFrame r = svc.handle(makeFrame<ServiceKind::Stats, CommandFrame>());
  ASSERT_EQ(r.kind, ServiceKind::StatsInfo);
  ASSERT_EQ(r.stats.size(), kStatsFieldCount);
  EXPECT_EQ(r.stats[0], 16u);  // n
  EXPECT_EQ(r.stats[1], 3u);   // live edges
  EXPECT_EQ(r.stats[2], 2u);   // max degree (path 0-1-2-3)
  EXPECT_EQ(r.stats[3], 3u);   // mutations admitted
  EXPECT_EQ(r.stats[4], 1u);   // queries admitted
  EXPECT_EQ(r.stats[5], 2u);   // epochs run
  EXPECT_EQ(r.stats[6], 0u);   // backlog now
  EXPECT_EQ(r.stats[7], 2u);   // backlog peak
}

TEST(ServiceRuntime, FlushRepliesEpochDoneAndShutdownSticks) {
  ColoringService svc;
  ASSERT_EQ(svc.handle(hello(8)).kind, ServiceKind::HelloOk);
  svc.handle(edgeCmd(ServiceKind::InsertEdge, 0, 1));

  ReplyFrame r = svc.handle(makeFrame<ServiceKind::Flush, CommandFrame>(
      CommandFrame{.seq = 4}));
  ASSERT_EQ(r.kind, ServiceKind::EpochDone);
  EXPECT_EQ(r.seq, 4u);
  EXPECT_EQ(r.b, 1u);  // one edge repaired

  r = svc.handle(makeFrame<ServiceKind::Shutdown, CommandFrame>());
  EXPECT_EQ(r.kind, ServiceKind::Ack);
  EXPECT_TRUE(svc.shutdownRequested());
  r = svc.handle(edgeCmd(ServiceKind::InsertEdge, 1, 2));
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadState));
}

TEST(ServiceRuntime, ReplyKindInCommandPositionIsBadFrame) {
  ColoringService svc;
  ASSERT_EQ(svc.handle(hello(8)).kind, ServiceKind::HelloOk);
  CommandFrame bogus;
  bogus.kind = ServiceKind::Ack;  // hand-built; decoders never produce this
  const ReplyFrame r = svc.handle(bogus);
  EXPECT_EQ(r.kind, ServiceKind::Error);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(ErrorCode::BadFrame));
}

TEST(ServiceRuntime, SessionPumpsAStreamEndToEnd) {
  StreamSpec spec;
  spec.seed = 0x1234;
  spec.n = 48;
  spec.commands = 200;
  spec.split = spec.commands;  // no mid-stream snapshot in `full`
  const StreamBundle streams = buildStreams(spec, "/tmp/unused.ckpt");

  std::stringstream in(std::string(
      reinterpret_cast<const char*>(streams.full.data()), streams.full.size()));
  std::stringstream out;
  ColoringService svc;
  const SessionResult session = runSession(svc, in, out);
  EXPECT_TRUE(session.clean());
  EXPECT_TRUE(session.shutdown);
  EXPECT_EQ(session.commands, session.replies);
  // Hello + 200 body commands + split Flush + final Flush + Shutdown.
  EXPECT_EQ(session.commands, spec.commands + 4);

  // One reply per command, all decodable.
  const std::string replyBytes = out.str();
  ReplyReader reader;
  reader.feed(reinterpret_cast<const std::uint8_t*>(replyBytes.data()),
              replyBytes.size());
  ReplyFrame reply;
  std::string error;
  std::uint64_t replies = 0;
  while (reader.next(&reply, &error) == DecodeStatus::Frame) ++replies;
  EXPECT_EQ(replies, session.replies);
  EXPECT_FALSE(reader.midFrame());

  // The surviving coloring is a valid ≤ 2Δ−1 edge coloring.
  const auto verdict = dynamic::verifyDynamicColoring(svc.graph(), svc.colors());
  EXPECT_TRUE(verdict.valid) << verdict.reason;
}

TEST(ServiceRuntime, TruncatedSessionEndsWithAnErrorReply) {
  StreamSpec spec;
  spec.n = 16;
  spec.commands = 20;
  spec.split = spec.commands;
  const StreamBundle streams = buildStreams(spec, "/tmp/unused.ckpt");
  std::string bytes(reinterpret_cast<const char*>(streams.full.data()),
                    streams.full.size());
  bytes.resize(bytes.size() - 3);  // cut mid-frame

  std::stringstream in(bytes);
  std::stringstream out;
  ColoringService svc;
  const SessionResult session = runSession(svc, in, out);
  EXPECT_TRUE(session.truncated);
  EXPECT_FALSE(session.clean());
  EXPECT_EQ(session.replies, session.commands + 1);  // trailing Error frame
}

TEST(ServiceRuntime, MonitoredChurnKeepsTheCatalogClean) {
  ServiceOptions opts;
  opts.monitor = true;
  opts.policy.maxBatch = 8;
  ColoringService svc(opts);
  ASSERT_EQ(svc.handle(hello(24)).kind, ServiceKind::HelloOk);

  StreamSpec spec;
  spec.seed = 0x777;
  spec.n = 24;
  spec.commands = 150;
  for (const CommandFrame& cmd : buildCommandList(spec)) svc.handle(cmd);
  svc.handle(makeFrame<ServiceKind::Flush, CommandFrame>());

  EXPECT_TRUE(svc.violations().empty())
      << svc.violations().front().detail;
  const auto verdict = dynamic::verifyDynamicColoring(svc.graph(), svc.colors());
  EXPECT_TRUE(verdict.valid) << verdict.reason;
}

}  // namespace
}  // namespace dima::service
