#include "src/baselines/greedy_cover.hpp"

#include <gtest/gtest.h>

#include "src/automata/vertex_cover.hpp"
#include "src/graph/generators.hpp"

namespace dima::baselines {
namespace {

TEST(GreedyCover, CoversEveryEdge) {
  support::Rng rng(1);
  const graph::Graph graphs[] = {
      graph::complete(10),
      graph::star(12),
      graph::cycle(9),
      graph::erdosRenyiAvgDegree(80, 6.0, rng),
  };
  for (const graph::Graph& g : graphs) {
    EXPECT_TRUE(automata::isVertexCover(g, greedyVertexCover(g).cover));
    EXPECT_TRUE(automata::isVertexCover(g, matchingVertexCover(g).cover));
  }
}

TEST(GreedyCover, StarIsOptimalForMaxDegreeGreedy) {
  const CoverResult cover = greedyVertexCover(graph::star(20));
  EXPECT_EQ(cover.cover.size(), 1u);
  EXPECT_EQ(cover.cover[0], 0u);  // the hub
}

TEST(GreedyCover, EmptyGraphNeedsNothing) {
  EXPECT_TRUE(greedyVertexCover(graph::Graph(5)).cover.empty());
  EXPECT_TRUE(matchingVertexCover(graph::Graph(5)).cover.empty());
}

TEST(MatchingCover, IsWithinTwiceTheMatchingBound) {
  support::Rng rng(2);
  const graph::Graph g = graph::erdosRenyiAvgDegree(100, 8.0, rng);
  const CoverResult cover = matchingVertexCover(g);
  EXPECT_EQ(cover.cover.size() % 2, 0u);  // endpoint pairs
}

TEST(CoverComparison, DistributedCoverWithinExpectedFactorOfGreedy) {
  // The distributed 2-approx can't beat max-degree greedy by much and
  // shouldn't be worse than its own 2x certificate allows. The comparison
  // documents the quality gap the distributed algorithm pays.
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(150, 6.0, rng);
  const auto distributed = automata::vertexCoverViaMatching(g, 7);
  const auto greedy = greedyVertexCover(g);
  ASSERT_TRUE(automata::isVertexCover(g, distributed.cover));
  // Greedy ≥ OPT ≥ matchingSize; distributed = 2·matchingSize.
  EXPECT_LE(distributed.cover.size(), 2 * greedy.cover.size());
  EXPECT_GE(greedy.cover.size(), distributed.matchingSize);
}

}  // namespace
}  // namespace dima::baselines
