#include "src/sim/monitor.hpp"

#include <gtest/gtest.h>

#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/net/trace.hpp"

namespace dima::sim {
namespace {

using net::TraceKind;
using net::TraceLog;

// Path 0-1 (one edge, item 0).
graph::Graph path2() { return graph::Graph(2, {{0, 1}}); }
// Path 0-1-2 (items 0 and 1 sharing endpoint 1).
graph::Graph path3() { return graph::Graph(3, {{0, 1}, {1, 2}}); }
// Path 1-0-2 (both edges incident to node 0).
graph::Graph star3() { return graph::Graph(3, {{0, 1}, {0, 2}}); }
// Path 0-1-2-3.
graph::Graph path4() {
  return graph::Graph(4, {{0, 1}, {1, 2}, {2, 3}});
}

/// A complete honest pairing of nodes `a` (invitor) and `b` (listener) on
/// their shared edge in cycle `c`, committing `color` on both halves.
void honestPair(TraceLog& log, std::uint64_t c, net::NodeId a, net::NodeId b,
                coloring::Color color) {
  log.record(c, a, TraceKind::StateChoice, 1);
  log.record(c, b, TraceKind::StateChoice, 0);
  log.record(c, a, TraceKind::InviteSent, b);
  log.record(c, b, TraceKind::InviteKept, a);
  log.record(c, b, TraceKind::ResponseSent, a);
  log.record(c, b, TraceKind::EdgeColored, a, color);
  log.record(c, a, TraceKind::EdgeColored, b, color);
}

TEST(InvariantMonitor, ViolationCodeNamesRoundTrip) {
  constexpr ViolationCode kAll[] = {
      ViolationCode::IllegalEvent,       ViolationCode::PairingViolation,
      ViolationCode::DoneRegression,     ViolationCode::CommitConflict,
      ViolationCode::HalfCommitMismatch, ViolationCode::ColorReuse,
      ViolationCode::HandshakeViolation, ViolationCode::PaletteOverflow,
  };
  for (const ViolationCode code : kAll) {
    ViolationCode parsed{};
    ASSERT_TRUE(violationCodeFromName(violationCodeName(code), &parsed))
        << violationCodeName(code);
    EXPECT_EQ(parsed, code);
  }
  ViolationCode parsed{};
  EXPECT_FALSE(violationCodeFromName("no-such-code", &parsed));
}

TEST(InvariantMonitor, HonestSyntheticCycleIsClean) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  EXPECT_TRUE(log.extended());
  honestPair(log, 0, 0, 1, 0);
  log.record(0, 0, TraceKind::NodeDone);
  log.record(0, 1, TraceKind::NodeDone);
  m.finish();
  log.setSink({});
  EXPECT_TRUE(m.ok()) << m.report();
  EXPECT_EQ(m.eventsSeen(), 9u);
}

TEST(InvariantMonitor, RealMadecRunIsClean) {
  const graph::Graph g = graph::complete(8);
  MonitorOptions options;
  options.semantics = Semantics::ProperEdge;
  options.paletteBound = 2 * g.maxDegree() - 1;
  InvariantMonitor m(g, options);
  TraceLog log;
  m.attach(log);
  coloring::MadecOptions madec;
  madec.trace = &log;
  const auto result = coloring::colorEdgesMadec(g, madec);
  m.finish();
  log.setSink({});
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(m.ok()) << m.report();
  EXPECT_GT(m.eventsSeen(), 0u);
}

TEST(InvariantMonitor, ActivityAfterNodeDoneIsDoneRegression) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::NodeDone);
  log.record(1, 0, TraceKind::StateChoice, 1);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::DoneRegression);
  EXPECT_EQ(m.violations().front().node, 0u);
}

TEST(InvariantMonitor, FabricatedResponseIsPairingViolation) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  // Node 1 claims it kept and answered an invitation node 0 never sent.
  log.record(0, 0, TraceKind::StateChoice, 1);
  log.record(0, 1, TraceKind::StateChoice, 0);
  log.record(0, 1, TraceKind::InviteKept, 0);
  log.record(0, 1, TraceKind::ResponseSent, 0);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::PairingViolation);
  EXPECT_EQ(m.violations().front().node, 1u);
}

TEST(InvariantMonitor, ResponseWithoutKeptInvitationIsPairingViolation) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 1, TraceKind::StateChoice, 0);
  log.record(0, 1, TraceKind::ResponseSent, 0);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::PairingViolation);
}

TEST(InvariantMonitor, ListenerInvitingIsIllegal) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::StateChoice, 0);
  log.record(0, 0, TraceKind::InviteSent, 1);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::IllegalEvent);
}

TEST(InvariantMonitor, CommitWithoutFormedPairIsIllegal) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::StateChoice, 1);
  log.record(0, 0, TraceKind::EdgeColored, 1, 0);  // invited nobody
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::IllegalEvent);
}

TEST(InvariantMonitor, DisagreeingHalvesAreHalfCommitMismatch) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::StateChoice, 1);
  log.record(0, 1, TraceKind::StateChoice, 0);
  log.record(0, 0, TraceKind::InviteSent, 1);
  log.record(0, 1, TraceKind::InviteKept, 0);
  log.record(0, 1, TraceKind::ResponseSent, 0);
  log.record(0, 1, TraceKind::EdgeColored, 0, 1);
  log.record(0, 0, TraceKind::EdgeColored, 1, 0);  // other half says 0
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::HalfCommitMismatch);
}

TEST(InvariantMonitor, AdjacentEqualColorsAreCommitConflict) {
  const graph::Graph g = path3();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  honestPair(log, 0, 0, 1, 5);  // edge {0,1} gets color 5
  // Next cycle node 2 half-commits the adjacent edge {1,2} with the same
  // color (node 2 never used 5 itself, so ColorReuse stays quiet and the
  // prefix scan is what must catch it).
  log.record(1, 2, TraceKind::StateChoice, 1);
  log.record(1, 2, TraceKind::InviteSent, 1);
  log.record(1, 2, TraceKind::EdgeColored, 1, 5);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::CommitConflict);
  EXPECT_EQ(m.violations().front().cycle, 1u);
}

TEST(InvariantMonitor, OwnColorRecommitIsColorReuse) {
  const graph::Graph g = star3();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  honestPair(log, 0, 0, 1, 3);  // edge {0,1}
  honestPair(log, 1, 0, 2, 3);  // edge {0,2}: node 0 reuses 3
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  bool sawReuse = false;
  for (const Violation& v : m.violations()) {
    sawReuse = sawReuse || (v.code == ViolationCode::ColorReuse && v.node == 0);
  }
  EXPECT_TRUE(sawReuse) << m.report();
}

TEST(InvariantMonitor, PaletteBoundIsEnforced) {
  const graph::Graph g = path2();
  MonitorOptions options;
  options.paletteBound = 1;  // 2Δ−1 for a single edge
  InvariantMonitor m(g, options);
  TraceLog log;
  m.attach(log);
  honestPair(log, 0, 0, 1, 1);  // color 1 is outside {0}
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::PaletteOverflow);
}

TEST(InvariantMonitor, SurvivingHigherTentativeIsHandshakeViolation) {
  // Strong semantics on 0-1-2: both pairs go tentative on color 0 in the
  // same cycle; the tentative holders 1 and 2 are adjacent, so the higher
  // item {1,2} must abort — committing it is the abort-echo bug.
  const graph::Graph g = path3();
  MonitorOptions options;
  options.semantics = Semantics::StrongEdge;
  InvariantMonitor m(g, options);
  TraceLog log;
  m.attach(log);
  log.record(0, 1, TraceKind::StateChoice, 1);
  log.record(0, 1, TraceKind::InviteSent, 0);
  log.record(0, 1, TraceKind::TentativeSet, 0, 0);  // item 0, color 0
  log.record(0, 2, TraceKind::StateChoice, 1);
  log.record(0, 2, TraceKind::InviteSent, 1);
  log.record(0, 2, TraceKind::TentativeSet, 1, 0);  // item 1, color 0
  log.record(0, 2, TraceKind::EdgeColored, 1, 0);   // commits the loser
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::HandshakeViolation);
  EXPECT_EQ(m.violations().front().node, 2u);
}

TEST(InvariantMonitor, SeededBaselineJoinsTheConflictScan) {
  const graph::Graph g = path3();
  InvariantMonitor m(g);
  m.seedCommit(0, 4);  // pre-existing coloring: edge {0,1} has color 4
  TraceLog log;
  m.attach(log);
  log.record(0, 2, TraceKind::StateChoice, 1);
  log.record(0, 2, TraceKind::InviteSent, 1);
  log.record(0, 2, TraceKind::EdgeColored, 1, 4);  // adjacent, same color
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::CommitConflict);
}

TEST(InvariantMonitor, SeededBaselineAllowsDistantEqualColors) {
  const graph::Graph g = path4();
  InvariantMonitor m(g);
  m.seedCommit(0, 4);  // edge {0,1}
  TraceLog log;
  m.attach(log);
  honestPair(log, 0, 2, 3, 4);  // edge {2,3} shares no endpoint
  m.finish();
  log.setSink({});
  EXPECT_TRUE(m.ok()) << m.report();
}

TEST(InvariantMonitor, LossyModeToleratesHalfCommittedConflicts) {
  // Under message loss an item can legitimately stay half-committed; the
  // relaxed prefix scan must not cry wolf over it.
  const graph::Graph g = path3();
  MonitorOptions options;
  options.lossy = true;
  InvariantMonitor m(g, options);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::StateChoice, 1);
  log.record(0, 0, TraceKind::InviteSent, 1);
  log.record(0, 0, TraceKind::EdgeColored, 1, 0);  // half of edge {0,1}
  log.record(1, 2, TraceKind::StateChoice, 1);
  log.record(1, 2, TraceKind::InviteSent, 1);
  log.record(1, 2, TraceKind::EdgeColored, 1, 0);  // half of edge {1,2}
  m.finish();
  log.setSink({});
  EXPECT_TRUE(m.ok()) << m.report();
}

TEST(InvariantMonitor, LossyModeStillChecksLocalBookkeeping) {
  const graph::Graph g = path2();
  MonitorOptions options;
  options.lossy = true;
  InvariantMonitor m(g, options);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::StateChoice, 0);
  log.record(0, 0, TraceKind::InviteSent, 1);  // listener inviting
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violations().front().code, ViolationCode::IllegalEvent);
}

TEST(InvariantMonitor, ReportRendersEveryViolation) {
  const graph::Graph g = path2();
  InvariantMonitor m(g);
  TraceLog log;
  m.attach(log);
  log.record(0, 0, TraceKind::NodeDone);
  log.record(1, 0, TraceKind::StateChoice, 1);
  m.finish();
  log.setSink({});
  ASSERT_FALSE(m.ok());
  const std::string report = m.report();
  EXPECT_NE(report.find("done-regression"), std::string::npos);
  EXPECT_EQ(m.violations().front().toString().empty(), false);
}

}  // namespace
}  // namespace dima::sim
