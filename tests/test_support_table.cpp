#include "src/support/table.hpp"

#include <gtest/gtest.h>

namespace dima::support {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRowOf("b", 22);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, FormatTrimsTrailingZeros) {
  EXPECT_EQ(TextTable::format(2.5), "2.5");
  EXPECT_EQ(TextTable::format(2.0), "2.0");
  EXPECT_EQ(TextTable::format(2.125), "2.125");
  EXPECT_EQ(TextTable::format(std::string("str")), "str");
  EXPECT_EQ(TextTable::format(7), "7");
}

TEST(TextTable, ColumnsStayAlignedWithWideCells) {
  TextTable t({"a", "b"});
  t.addRow({"very-long-cell-content", "x"});
  t.addRow({"s", "y"});
  const std::string out = t.render();
  // "x" and "y" must land in the same column.
  const auto lineWithX = out.find("very-long-cell-content");
  const auto lineWithS = out.find("\ns ");
  ASSERT_NE(lineWithX, std::string::npos);
  ASSERT_NE(lineWithS, std::string::npos);
}

TEST(AsciiPlot, RendersPointsAndLegend) {
  AsciiPlot plot("test plot", "xs", "ys");
  PlotSeries s;
  s.name = "series-one";
  s.glyph = 'o';
  s.x = {0, 1, 2, 3};
  s.y = {0, 10, 20, 30};
  plot.add(s);
  const std::string out = plot.render();
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find("series-one"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("x: xs"), std::string::npos);
}

TEST(AsciiPlot, GuideLineAppears) {
  AsciiPlot plot("guides", "x", "y");
  PlotSeries s;
  s.name = "pts";
  s.x = {0, 10};
  s.y = {0, 20};
  plot.add(s);
  plot.addGuide("two-x", 2.0, 0.0);
  const std::string out = plot.render();
  EXPECT_NE(out.find("two-x"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(AsciiPlot, DegenerateSinglePointDoesNotCrash) {
  AsciiPlot plot("one point", "x", "y");
  PlotSeries s;
  s.name = "p";
  s.x = {5};
  s.y = {5};
  plot.add(s);
  EXPECT_FALSE(plot.render().empty());
}

TEST(AsciiPlot, EmptySeriesListRenders) {
  AsciiPlot plot("empty", "x", "y");
  EXPECT_FALSE(plot.render().empty());
}

}  // namespace
}  // namespace dima::support
