#include "src/net/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/net/network.hpp"

namespace dima::net {
namespace {

struct Ping {
  int value = 0;
};

/// A payload exposing one of the unified wire fields so the chaos layer's
/// in-domain corruption has something to rewrite.
struct ColorWire {
  std::int32_t color = 0;
};

std::vector<NodeId> sendersOf(const SyncNetwork<Ping>& net, NodeId v) {
  std::vector<NodeId> out;
  for (const auto& env : net.inbox(v)) out.push_back(env.from);
  return out;
}

TEST(ChaosModel, PerturbsAndLossyClassifyTheKnobs) {
  ChaosModel quiet;
  EXPECT_FALSE(quiet.perturbs());
  EXPECT_FALSE(quiet.lossy());

  ChaosModel permuted;
  permuted.permuteInboxes = true;
  EXPECT_TRUE(permuted.perturbs());
  EXPECT_FALSE(permuted.lossy());  // reorders, loses nothing

  ChaosModel crashing;
  crashing.crashes.push_back({0, 3});
  EXPECT_TRUE(crashing.lossy());

  ChaosModel scripted;
  scripted.script.push_back({MessageFault::Kind::Drop, 0, 0, 1});
  EXPECT_TRUE(scripted.lossy());

  // Implicit conversion keeps FaultModel call sites compiling.
  FaultModel base;
  base.dropProbability = 0.1;
  const ChaosModel widened = base;
  EXPECT_TRUE(widened.lossy());
  EXPECT_EQ(widened.dropProbability, 0.1);
}

TEST(ChaosModel, LinkDropsAreAsymmetric) {
  const graph::Graph g(2, {{0, 1}});
  ChaosModel chaos;
  chaos.linkDrops.push_back({0, 1, 1.0});  // 0→1 always lost, 1→0 reliable
  SyncNetwork<Ping> net(g, chaos);
  constexpr int kRounds = 20;
  for (int r = 0; r < kRounds; ++r) {
    net.broadcast(0, Ping{r});
    net.broadcast(1, Ping{r});
    net.deliverRound();
    EXPECT_TRUE(net.inbox(1).empty());
    ASSERT_EQ(net.inbox(0).size(), 1u);
    EXPECT_EQ(net.inbox(0).front().msg.value, r);
  }
  const Counters c = net.counters();
  EXPECT_EQ(c.messagesDropped, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(c.messagesDelivered, static_cast<std::uint64_t>(kRounds));
}

TEST(ChaosModel, DropRateHonorsPerLinkOverride) {
  ChaosModel chaos;
  chaos.dropProbability = 0.1;
  chaos.linkDrops.push_back({2, 3, 0.9});
  EXPECT_EQ(chaos.dropRate(2, 3), 0.9);
  EXPECT_EQ(chaos.dropRate(3, 2), 0.1);  // reverse keeps the uniform rate
  EXPECT_EQ(chaos.dropRate(0, 1), 0.1);
}

TEST(ChaosModel, CrashSilencesBothDirectionsFromItsRound) {
  const graph::Graph g(3, {{0, 1}, {1, 2}});
  ChaosModel chaos;
  chaos.crashes.push_back({1, 1});  // node 1 dies before round 1 delivers
  SyncNetwork<Ping> net(g, chaos);
  for (int r = 0; r < 4; ++r) {
    net.broadcast(0, Ping{r});
    net.broadcast(1, Ping{r});
    net.broadcast(2, Ping{r});
    net.deliverRound();
    if (r == 0) {
      // Pre-crash round: everything flows.
      EXPECT_EQ(net.inbox(1).size(), 2u);
      EXPECT_EQ(net.inbox(0).size(), 1u);
      EXPECT_EQ(net.inbox(2).size(), 1u);
    } else {
      // Crash-stop: node 1 neither hears nor is heard.
      EXPECT_TRUE(net.inbox(1).empty());
      EXPECT_TRUE(net.inbox(0).empty());
      EXPECT_TRUE(net.inbox(2).empty());
    }
  }
}

TEST(ChaosModel, ScriptedFaultsFireExactlyAsWritten) {
  const graph::Graph g(2, {{0, 1}});
  ChaosModel chaos;
  chaos.script.push_back({MessageFault::Kind::Drop, 0, 0, 1});
  chaos.script.push_back({MessageFault::Kind::Duplicate, 1, 0, 1});
  SyncNetwork<Ping> net(g, chaos);

  net.broadcast(0, Ping{10});
  net.deliverRound();
  EXPECT_TRUE(net.inbox(1).empty());  // round 0: scripted drop

  net.broadcast(0, Ping{11});
  net.deliverRound();
  EXPECT_EQ(net.inbox(1).size(), 2u);  // round 1: scripted duplicate

  net.broadcast(0, Ping{12});
  net.deliverRound();
  EXPECT_EQ(net.inbox(1).size(), 1u);  // round 2: script exhausted

  const Counters c = net.counters();
  EXPECT_EQ(c.messagesDropped, 1u);
  EXPECT_EQ(c.messagesDuplicated, 1u);
}

TEST(ChaosModel, InboxPermutationIsDeterministicAndLossless) {
  const graph::Graph g = graph::complete(6);
  ChaosModel chaos;
  chaos.permuteInboxes = true;
  chaos.seed = 17;

  const auto runOnce = [&] {
    SyncNetwork<Ping> net(g, chaos);
    for (NodeId v = 0; v < 6; ++v) net.broadcast(v, Ping{int(v)});
    net.deliverRound();
    std::vector<std::vector<NodeId>> orders;
    for (NodeId v = 0; v < 6; ++v) orders.push_back(sendersOf(net, v));
    return orders;
  };

  const auto first = runOnce();
  EXPECT_EQ(first, runOnce());  // pure function of (topology, seed)

  bool someOrderChanged = false;
  for (NodeId v = 0; v < 6; ++v) {
    // Content is preserved: exactly one delivery per neighbor...
    std::vector<NodeId> sorted = first[v];
    std::sort(sorted.begin(), sorted.end());
    std::vector<NodeId> neighbors;
    for (NodeId u = 0; u < 6; ++u) {
      if (u != v) neighbors.push_back(u);
    }
    EXPECT_EQ(sorted, neighbors);
    // ...but the slot order is no longer the incidence order everywhere.
    someOrderChanged = someOrderChanged || first[v] != neighbors;
  }
  EXPECT_TRUE(someOrderChanged);

  ChaosModel reseeded = chaos;
  reseeded.seed = 18;
  SyncNetwork<Ping> other(g, reseeded);
  for (NodeId v = 0; v < 6; ++v) other.broadcast(v, Ping{int(v)});
  other.deliverRound();
  bool differsFromFirstSeed = false;
  for (NodeId v = 0; v < 6; ++v) {
    differsFromFirstSeed = differsFromFirstSeed || sendersOf(other, v) != first[v];
  }
  EXPECT_TRUE(differsFromFirstSeed);
}

TEST(ChaosModel, CorruptionStaysInDomainAndIsCounted) {
  const graph::Graph g(2, {{0, 1}});
  ChaosModel chaos;
  chaos.corruptProbability = 0.5;
  chaos.seed = 23;
  SyncNetwork<ColorWire> net(g, chaos);
  constexpr int kRounds = 200;
  int rewritten = 0;
  for (int r = 0; r < kRounds; ++r) {
    net.broadcast(0, ColorWire{r % 16});
    net.deliverRound();
    ASSERT_EQ(net.inbox(1).size(), 1u);
    const std::int32_t got = net.inbox(1).front().msg.color;
    EXPECT_GE(got, 0);  // bounded bit-flips keep the field in-domain
    if (got != r % 16) ++rewritten;
  }
  const Counters c = net.counters();
  EXPECT_EQ(c.messagesCorrupted, static_cast<std::uint64_t>(rewritten));
  EXPECT_GT(c.messagesCorrupted, 0u);
  EXPECT_LT(c.messagesCorrupted, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(c.messagesDelivered, static_cast<std::uint64_t>(kRounds));
}

TEST(ChaosModel, RecordedFaultsReplayAsAScript) {
  const graph::Graph g = graph::complete(5);
  ChaosModel chaos;
  chaos.dropProbability = 0.3;
  chaos.duplicateProbability = 0.2;
  chaos.seed = 31;
  std::vector<MessageFault> fired;
  chaos.recordTo = &fired;

  constexpr int kRounds = 30;
  Counters probabilistic;
  {
    SyncNetwork<Ping> net(g, chaos);
    for (int r = 0; r < kRounds; ++r) {
      for (NodeId v = 0; v < 5; ++v) net.broadcast(v, Ping{r});
      net.deliverRound();
    }
    probabilistic = net.counters();
  }
  EXPECT_FALSE(fired.empty());
  EXPECT_EQ(probabilistic.messagesDropped + probabilistic.messagesDuplicated,
            fired.size());

  ChaosModel scripted;  // only the recorded script, no probabilities
  scripted.script = fired;
  SyncNetwork<Ping> replay(g, scripted);
  for (int r = 0; r < kRounds; ++r) {
    for (NodeId v = 0; v < 5; ++v) replay.broadcast(v, Ping{r});
    replay.deliverRound();
  }
  const Counters c = replay.counters();
  EXPECT_EQ(c.messagesDropped, probabilistic.messagesDropped);
  EXPECT_EQ(c.messagesDuplicated, probabilistic.messagesDuplicated);
  EXPECT_EQ(c.messagesDelivered, probabilistic.messagesDelivered);
}

}  // namespace
}  // namespace dima::net
