/// \file test_golden.cpp
/// Golden regression pins: exact outputs for fixed seeds. The RNG stack is
/// platform-independent (Xoshiro256**, Lemire bounded draws — no standard-
/// library distributions), so these values must be stable everywhere; a
/// change means the random stream or a protocol's draw order moved, which
/// silently invalidates every recorded experiment. Update deliberately.

#include <gtest/gtest.h>

#include "src/automata/discovery.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"

namespace dima {
namespace {

graph::Graph goldenGraph() {
  support::Rng rng(0xfeed);
  return graph::erdosRenyiAvgDegree(50, 6.0, rng);
}

TEST(Golden, GeneratorStreamIsPinned) {
  const graph::Graph g = goldenGraph();
  EXPECT_EQ(g.numEdges(), 150u);
  EXPECT_EQ(g.maxDegree(), 11u);
  EXPECT_EQ(g.edge(0).u, 25u);
  EXPECT_EQ(g.edge(0).v, 26u);
}

TEST(Golden, MadecRunIsPinned) {
  const auto result = coloring::colorEdgesMadec(goldenGraph(), {.seed = 1234});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 30u);
  EXPECT_EQ(result.colorsUsed(), 12u);
  EXPECT_EQ(result.colors[0], 7);
  EXPECT_EQ(result.colors[5], 6);
}

TEST(Golden, Dima2EdRunIsPinned) {
  const graph::Digraph d(goldenGraph());
  const auto result = coloring::colorArcsDima2Ed(d, {.seed = 1234});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 156u);
  EXPECT_EQ(result.colorsUsed(), 78u);
  EXPECT_EQ(result.colors[0], 20);
}

TEST(Golden, MaximalMatchingIsPinned) {
  const auto result = automata::maximalMatching(goldenGraph(), 77);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.matching.size(), 22u);
  EXPECT_EQ(result.rounds, 6u);
}

}  // namespace
}  // namespace dima
