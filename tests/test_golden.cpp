/// \file test_golden.cpp
/// Golden regression pins: exact outputs for fixed seeds. The RNG stack is
/// platform-independent (Xoshiro256**, Lemire bounded draws — no standard-
/// library distributions), so these values must be stable everywhere; a
/// change means the random stream or a protocol's draw order moved, which
/// silently invalidates every recorded experiment. Update deliberately.

#include <gtest/gtest.h>

#include <set>

#include "src/automata/discovery.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/strong_madec.hpp"
#include "src/dynamic/churn.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/graph/generators.hpp"

namespace dima {
namespace {

graph::Graph goldenGraph() {
  support::Rng rng(0xfeed);
  return graph::erdosRenyiAvgDegree(50, 6.0, rng);
}

TEST(Golden, GeneratorStreamIsPinned) {
  const graph::Graph g = goldenGraph();
  EXPECT_EQ(g.numEdges(), 150u);
  EXPECT_EQ(g.maxDegree(), 11u);
  EXPECT_EQ(g.edge(0).u, 25u);
  EXPECT_EQ(g.edge(0).v, 26u);
}

TEST(Golden, MadecRunIsPinned) {
  const auto result = coloring::colorEdgesMadec(goldenGraph(), {.seed = 1234});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 30u);
  EXPECT_EQ(result.colorsUsed(), 12u);
  EXPECT_EQ(result.colors[0], 7);
  EXPECT_EQ(result.colors[5], 6);
  // Full traffic accounting: any drift in the message schedule shows here.
  EXPECT_EQ(result.metrics.commRounds, 90u);
  EXPECT_EQ(result.metrics.broadcasts, 831u);
  EXPECT_EQ(result.metrics.messagesDelivered, 5589u);
  EXPECT_EQ(result.metrics.bitsDelivered, 42849u);
  EXPECT_EQ(result.metrics.maxMessageBits, 12u);
}

TEST(Golden, Dima2EdRunIsPinned) {
  const graph::Digraph d(goldenGraph());
  const auto result = coloring::colorArcsDima2Ed(d, {.seed = 1234});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 156u);
  EXPECT_EQ(result.colorsUsed(), 78u);
  EXPECT_EQ(result.colors[0], 20);
  EXPECT_EQ(result.metrics.commRounds, 780u);
  EXPECT_EQ(result.metrics.broadcasts, 3643u);
  EXPECT_EQ(result.metrics.messagesDelivered, 23712u);
  EXPECT_EQ(result.metrics.bitsDelivered, 307388u);
  EXPECT_EQ(result.metrics.maxMessageBits, 20u);
}

TEST(Golden, StrongMadecRunIsPinned) {
  const auto result =
      coloring::colorEdgesStrongMadec(goldenGraph(), {.seed = 1234});
  ASSERT_TRUE(result.metrics.converged);
  EXPECT_EQ(result.metrics.computationRounds, 64u);
  EXPECT_EQ(result.colorsUsed(), 39u);
  EXPECT_EQ(result.colors[0], 7);
  EXPECT_EQ(result.colors[5], 36);
  EXPECT_EQ(result.metrics.commRounds, 320u);
  EXPECT_EQ(result.metrics.broadcasts, 1799u);
  EXPECT_EQ(result.metrics.messagesDelivered, 11583u);
  EXPECT_EQ(result.metrics.bitsDelivered, 137809u);
  EXPECT_EQ(result.metrics.maxMessageBits, 17u);
}

TEST(Golden, IncrementalRecolorIsPinned) {
  dynamic::DynamicGraph g(goldenGraph());
  dynamic::IncrementalRecolorer recolorer(g, {.seed = 1234});

  // Repair 0 is the initial full coloring: the frontier is the whole graph.
  const dynamic::RepairStats first = recolorer.repair();
  ASSERT_TRUE(first.converged);
  EXPECT_EQ(first.cycles, 21u);
  EXPECT_EQ(first.recolored.size(), 150u);
  EXPECT_EQ(first.frontierVertices, 50u);
  EXPECT_EQ(recolorer.colors()[0], 7);
  EXPECT_EQ(recolorer.colors()[5], 7);

  std::set<coloring::Color> palette;
  for (const dynamic::EdgeId e : g.liveEdges()) {
    palette.insert(recolorer.colors()[e]);
  }
  EXPECT_EQ(palette.size(), 11u);

  // One churn batch, then the localized repair.
  dynamic::EventStream churn({.seed = 99, .opsPerBatch = 12});
  const dynamic::ChurnBatch batch = churn.nextBatch(g);
  EXPECT_EQ(batch.inserts, 6u);
  EXPECT_EQ(batch.erases, 6u);
  recolorer.applyBatch(batch);

  const dynamic::RepairStats second = recolorer.repair();
  ASSERT_TRUE(second.converged);
  EXPECT_EQ(second.cycles, 2u);
  EXPECT_EQ(second.recolored.size(), 6u);
  EXPECT_EQ(second.evictedEdges, 0u);
  EXPECT_EQ(second.frontierVertices, 12u);

  std::set<coloring::Color> repaired;
  for (const dynamic::EdgeId e : g.liveEdges()) {
    repaired.insert(recolorer.colors()[e]);
  }
  EXPECT_EQ(repaired.size(), 11u);
}

TEST(Golden, MaximalMatchingIsPinned) {
  const auto result = automata::maximalMatching(goldenGraph(), 77);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.matching.size(), 22u);
  EXPECT_EQ(result.rounds, 6u);
}

}  // namespace
}  // namespace dima
