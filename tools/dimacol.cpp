/// \file dimacol.cpp
/// The `dimacol` command-line tool: run, compare and validate every
/// algorithm in the library from the shell. See `dimacol help`.

#include <iostream>

#include "src/cli/commands.hpp"

int main(int argc, char** argv) {
  dima::cli::Args args(argc, argv);
  return dima::cli::runCommand(args, std::cout, std::cerr);
}
