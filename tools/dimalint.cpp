/// \file dimalint.cpp
/// `dimalint`: the repo-specific static checker — the middle layer of the
/// static gate (clang thread-safety annotations below it, clang-tidy above
/// it; see DESIGN.md §11). It enforces the contracts generic tooling cannot
/// see because they live in *this* codebase's conventions:
///
///   wire-kind-registry   every `WireKind` enumerator is registered in a
///                        wire format's `kKinds` width table
///                        (src/net/message.hpp) and named in the
///                        encode/decode-side `wireKindName` registry
///                        (src/net/message.cpp). Textual re-check of the
///                        `wireKindsRegistered` static_assert, so the gate
///                        survives even if the assert is edited away.
///   trace-kind-monitor   every `TraceKind` enumerator is consumed by the
///                        `InvariantMonitor` (src/sim/monitor.cpp) and
///                        named in `traceKindName` (src/net/trace.cpp) —
///                        an unmonitored event kind is a hole in the
///                        simulation-testing safety catalog.
///   layering             protocol policy TUs (src/automata, src/coloring,
///                        src/dynamic, src/baselines) never include
///                        src/net/network.hpp directly; they talk to the
///                        substrate through the engine/protocol surface.
///   shard-boundary-layering  the same policy TUs never include
///                        src/net/shard.hpp or src/graph/partition.hpp
///                        directly: sharding is engine-internal (DESIGN.md
///                        §13) and protocols must stay partition-blind to
///                        keep colors bit-identical across shard counts.
///   service-layering     src/service TUs never include src/net/network.hpp
///                        directly either: the serve subsystem depends on
///                        dynamic/coloring/support and drives all repairs
///                        through `IncrementalRecolorer`.
///   transport-layering   only src/service/transport.cpp includes the raw
///                        socket headers (<sys/socket.h>, <netinet/*.h>,
///                        <arpa/inet.h>, <poll.h>, <sys/un.h>): every other
///                        TU — the wire codec, session loop, replica logic —
///                        stays socket-blind and testable over any
///                        iostream/fd, so the byte-parity contract between
///                        the pipe and TCP paths cannot silently fork.
///   service-kind-registry  every `ServiceKind` enumerator is registered in
///                        a frame format's `kKinds` table
///                        (src/service/wire.hpp) and named/decoded in
///                        src/service/wire.cpp — textual re-check of the
///                        `serviceKindsRegistered` static_assert.
///   hot-path-tokens      files tagged `// dimalint: hot-path` contain no
///                        `std::function`, no `new`/`malloc`, and no
///                        node-based containers — the zero-copy substrate's
///                        "no per-message allocation" promise.
///   bitplane-hot-path    bit-plane engine TUs (`bitplane*.{hpp,cpp}`,
///                        keyed by path, not by marker) additionally ban
///                        `virtual` — the engine's word-parallel round
///                        loops must stay free of indirection, per-node
///                        virtual dispatch, and allocation.
///   pragma-once          every header under src/ starts with #pragma once.
///
/// The scan is token-level (comments and string literals stripped first),
/// deliberately not libclang-based: it must build everywhere the project
/// builds and run in milliseconds on every CI push. The stripping, tree
/// loading, and enum parsing live in the shared lexing layer
/// (tools/dimacheck/lex.hpp) used by both dimalint and the cross-TU
/// semantic pass `dimacheck`.
///
/// Self-test: `dimalint --self-check tests/lint_fixtures` runs every rule
/// over per-rule fixture trees; each known-bad tree must trip exactly its
/// rule, the `clean` tree must trip nothing, and every rule must have a
/// fixture (so a new rule cannot ship untested).

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "tools/dimacheck/lex.hpp"

namespace fs = std::filesystem;

using dimatool::containsToken;
using dimatool::Enumerator;
using dimatool::lineOf;
using dimatool::loadTree;
using dimatool::parseEnumClass;
using dimatool::SourceFile;
using dimatool::Tree;

namespace {

struct Finding {
  std::string rule;
  std::string file;   // repo-relative path
  std::size_t line = 0;
  std::string message;
};

void addFinding(std::vector<Finding>& out, const char* rule,
                const std::string& file, std::size_t line,
                std::string message) {
  out.push_back(Finding{rule, file, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// Rules. Each scans the tree and appends findings; a rule whose anchor file
// is absent from the tree reports nothing (fixture trees are minimal).

void ruleWireKindRegistry(const Tree& t, std::vector<Finding>& out) {
  const SourceFile* hpp = t.find("src/net/message.hpp");
  if (hpp == nullptr) return;
  const SourceFile* cpp = t.find("src/net/message.cpp");
  for (const Enumerator& e : parseEnumClass(*hpp, "WireKind")) {
    const std::string qualified = "WireKind::" + e.name;
    if (!containsToken(hpp->code, qualified)) {
      addFinding(out, "wire-kind-registry", hpp->path, e.line,
                 "WireKind::" + e.name +
                     " is not registered in any wire format's kKinds table "
                     "(no kind-field width)");
    }
    if (cpp != nullptr && !containsToken(cpp->code, qualified)) {
      addFinding(out, "wire-kind-registry", cpp->path, 1,
                 "WireKind::" + e.name +
                     " is missing from the wireKindName encode/decode "
                     "registry");
    }
  }
}

void ruleTraceKindMonitor(const Tree& t, std::vector<Finding>& out) {
  const SourceFile* hpp = t.find("src/net/trace.hpp");
  if (hpp == nullptr) return;
  const SourceFile* monitor = t.find("src/sim/monitor.cpp");
  const SourceFile* cpp = t.find("src/net/trace.cpp");
  for (const Enumerator& e : parseEnumClass(*hpp, "TraceKind")) {
    const std::string qualified = "TraceKind::" + e.name;
    if (monitor != nullptr && !containsToken(monitor->code, qualified)) {
      addFinding(out, "trace-kind-monitor", monitor->path, 1,
                 "TraceKind::" + e.name +
                     " is never consumed by the InvariantMonitor — the "
                     "event kind is outside the safety catalog");
    }
    if (cpp != nullptr && !containsToken(cpp->code, qualified)) {
      addFinding(out, "trace-kind-monitor", cpp->path, 1,
                 "TraceKind::" + e.name + " has no traceKindName entry");
    }
  }
}

void ruleLayering(const Tree& t, std::vector<Finding>& out) {
  static const char* kPolicyDirs[] = {"src/automata/", "src/coloring/",
                                      "src/dynamic/", "src/baselines/"};
  for (const SourceFile& f : t.files) {
    const bool policy =
        std::any_of(std::begin(kPolicyDirs), std::end(kPolicyDirs),
                    [&](const char* d) { return f.path.starts_with(d); });
    if (!policy) continue;
    const std::string inc = "\"src/net/network.hpp\"";
    const std::size_t pos = f.raw.find(inc);
    if (pos != std::string::npos) {
      addFinding(out, "layering", f.path, lineOf(f.raw, pos),
                 "protocol policy layer includes src/net/network.hpp "
                 "directly; go through the engine/protocol surface");
    }
  }
}

void ruleShardBoundaryLayering(const Tree& t, std::vector<Finding>& out) {
  // Sharding is an engine concern (DESIGN.md §13): protocols observe one
  // inbox in incidence order and must stay partition-blind. A policy TU
  // that names the shard substrate or the partitioner directly could grow
  // shard-count-dependent behavior, which breaks the bit-identity contract.
  // Route through src/net/engine.hpp, which owns both headers.
  static const char* kPolicyDirs[] = {"src/automata/", "src/coloring/",
                                      "src/dynamic/", "src/baselines/"};
  static const char* kBannedIncludes[] = {"\"src/net/shard.hpp\"",
                                          "\"src/graph/partition.hpp\""};
  for (const SourceFile& f : t.files) {
    const bool policy =
        std::any_of(std::begin(kPolicyDirs), std::end(kPolicyDirs),
                    [&](const char* d) { return f.path.starts_with(d); });
    if (!policy) continue;
    for (const char* inc : kBannedIncludes) {
      const std::size_t pos = f.raw.find(inc);
      if (pos != std::string::npos) {
        addFinding(out, "shard-boundary-layering", f.path,
                   lineOf(f.raw, pos),
                   "protocol policy layer includes " +
                       std::string(inc).substr(1,
                                               std::string(inc).size() - 2) +
                       " directly; sharding is engine-internal — include "
                       "src/net/engine.hpp instead");
      }
    }
  }
}

void ruleServiceLayering(const Tree& t, std::vector<Finding>& out) {
  // The service subsystem sits above dynamic/coloring/support and talks to
  // the automaton only through IncrementalRecolorer; reaching into the
  // message substrate directly would bypass the repair-epoch discipline.
  for (const SourceFile& f : t.files) {
    if (!f.path.starts_with("src/service/")) continue;
    const std::string inc = "\"src/net/network.hpp\"";
    const std::size_t pos = f.raw.find(inc);
    if (pos != std::string::npos) {
      addFinding(out, "service-layering", f.path, lineOf(f.raw, pos),
                 "service layer includes src/net/network.hpp directly; "
                 "drive repairs through dynamic::IncrementalRecolorer");
    }
  }
}

void ruleTransportLayering(const Tree& t, std::vector<Finding>& out) {
  // The TCP transport is one TU deep by design (PROTOCOLS.md §12.6): frame
  // codecs, the session loop, replication, and recovery all speak
  // bytes/fds, never sockets, so the pipe path and the socket path share
  // every line of protocol code. A second TU naming the socket headers is
  // the start of a fork in that shared path.
  static const char* kSocketHeaders[] = {
      "<sys/socket.h>", "<netinet/in.h>", "<netinet/tcp.h>",
      "<arpa/inet.h>",  "<poll.h>",       "<sys/poll.h>",
      "<sys/un.h>"};
  for (const SourceFile& f : t.files) {
    if (f.path == "src/service/transport.cpp") continue;
    for (const char* inc : kSocketHeaders) {
      const std::size_t pos = f.raw.find(inc);
      if (pos != std::string::npos) {
        addFinding(out, "transport-layering", f.path, lineOf(f.raw, pos),
                   "includes " + std::string(inc) +
                       " outside src/service/transport.cpp; protocol TUs "
                       "must stay socket-blind (fds and byte buffers only)");
      }
    }
  }
}

void ruleServiceKindRegistry(const Tree& t, std::vector<Finding>& out) {
  // Textual re-check of the serviceKindsRegistered static_assert in
  // src/service/wire.hpp (same belt-and-braces as wire-kind-registry): the
  // gate survives even if the assert is edited away.
  const SourceFile* hpp = t.find("src/service/wire.hpp");
  if (hpp == nullptr) return;
  const SourceFile* cpp = t.find("src/service/wire.cpp");
  for (const Enumerator& e : parseEnumClass(*hpp, "ServiceKind")) {
    const std::string qualified = "ServiceKind::" + e.name;
    if (!containsToken(hpp->code, qualified)) {
      addFinding(out, "service-kind-registry", hpp->path, e.line,
                 "ServiceKind::" + e.name +
                     " is not registered in any frame format's kKinds "
                     "table");
    }
    if (cpp != nullptr && !containsToken(cpp->code, qualified)) {
      addFinding(out, "service-kind-registry", cpp->path, 1,
                 "ServiceKind::" + e.name +
                     " is missing from the serviceKindName / payload codec "
                     "registry");
    }
  }
}

void ruleHotPathTokens(const Tree& t, std::vector<Finding>& out) {
  static const char* kBanned[] = {"std::function", "std::bind",
                                  "malloc",        "calloc",
                                  "std::map",      "std::unordered_map",
                                  "std::list"};
  for (const SourceFile& f : t.files) {
    if (f.raw.find("dimalint: hot-path") == std::string::npos) continue;
    for (const char* token : kBanned) {
      if (containsToken(f.code, token)) {
        addFinding(out, "hot-path-tokens", f.path,
                   lineOf(f.code, f.code.find(token)),
                   std::string(token) +
                       " in a hot-path-tagged file (zero-copy substrate "
                       "promise: no per-message allocation or indirection)");
      }
    }
    if (containsToken(f.code, "new")) {
      addFinding(out, "hot-path-tokens", f.path,
                 lineOf(f.code, f.code.find("new")),
                 "operator new in a hot-path-tagged file");
    }
  }
}

void ruleBitPlaneHotPath(const Tree& t, std::vector<Finding>& out) {
  // The bit-plane engine's whole point is branch-free, allocation-free,
  // word-parallel round loops (DESIGN.md §12): one std::function call or
  // per-node virtual dispatch inside a plane pass costs more than the pass
  // itself. The rule keys on the file *path* (any TU named `bitplane*`), not
  // on the hot-path marker, so deleting the marker comment cannot un-gate
  // the engine. Token-level approximation of "no allocation in the round
  // loop": bare `new`/`malloc` are banned outright; std::vector members are
  // fine because they are sized at construction/reset, outside the loop.
  static const char* kBanned[] = {"std::function",
                                  "std::bind",
                                  "virtual",
                                  "malloc",
                                  "calloc",
                                  "new",
                                  "std::map",
                                  "std::unordered_map",
                                  "std::list",
                                  "std::deque"};
  for (const SourceFile& f : t.files) {
    const std::size_t slash = f.path.rfind('/');
    const std::string name =
        slash == std::string::npos ? f.path : f.path.substr(slash + 1);
    if (!name.starts_with("bitplane")) continue;
    for (const char* token : kBanned) {
      if (containsToken(f.code, token)) {
        addFinding(out, "bitplane-hot-path", f.path,
                   lineOf(f.code, f.code.find(token)),
                   std::string(token) +
                       " in a bit-plane engine TU (word-parallel round "
                       "loops must stay free of indirection, virtual "
                       "dispatch, and allocation)");
      }
    }
  }
}

void rulePragmaOnce(const Tree& t, std::vector<Finding>& out) {
  for (const SourceFile& f : t.files) {
    if (!f.path.ends_with(".hpp")) continue;
    // The guard must appear before any code token (doc comments may lead).
    const std::size_t pragma = f.raw.find("#pragma once");
    const std::size_t firstCode =
        f.code.find_first_not_of(" \t\n\r");
    if (pragma == std::string::npos ||
        (firstCode != std::string::npos &&
         f.code.compare(firstCode, 7, "#pragma") != 0)) {
      addFinding(out, "pragma-once", f.path, 1,
                 "header does not start with #pragma once");
    }
  }
}

struct Rule {
  const char* id;
  const char* summary;
  void (*run)(const Tree&, std::vector<Finding>&);
};

constexpr Rule kRules[] = {
    {"wire-kind-registry",
     "every WireKind has a kKinds width entry and a wireKindName entry",
     ruleWireKindRegistry},
    {"trace-kind-monitor",
     "every TraceKind is consumed by the InvariantMonitor and named",
     ruleTraceKindMonitor},
    {"layering",
     "protocol policy TUs never include src/net/network.hpp directly",
     ruleLayering},
    {"shard-boundary-layering",
     "protocol policy TUs never include src/net/shard.hpp or "
     "src/graph/partition.hpp directly",
     ruleShardBoundaryLayering},
    {"service-layering",
     "src/service TUs never include src/net/network.hpp directly",
     ruleServiceLayering},
    {"transport-layering",
     "only src/service/transport.cpp includes the raw socket headers",
     ruleTransportLayering},
    {"service-kind-registry",
     "every ServiceKind has a frame-format kKinds entry and a "
     "serviceKindName entry",
     ruleServiceKindRegistry},
    {"hot-path-tokens",
     "hot-path-tagged files are free of std::function/allocation tokens",
     ruleHotPathTokens},
    {"bitplane-hot-path",
     "bit-plane engine TUs are free of std::function, virtual dispatch, "
     "and allocation tokens",
     ruleBitPlaneHotPath},
    {"pragma-once", "headers under src/ start with #pragma once",
     rulePragmaOnce},
};

// ---------------------------------------------------------------------------

std::vector<Finding> lintTree(const Tree& tree) {
  std::vector<Finding> findings;
  for (const Rule& rule : kRules) rule.run(tree, findings);
  return findings;
}

void printFindings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
}

/// Runs every rule over the per-rule fixture trees; see the file comment.
int selfCheck(const fs::path& fixturesRoot) {
  if (!fs::exists(fixturesRoot)) {
    std::cerr << "dimalint: fixtures directory not found: " << fixturesRoot
              << "\n";
    return 2;
  }
  int failures = 0;
  std::set<std::string> coveredRules;
  for (const auto& entry : fs::directory_iterator(fixturesRoot)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    // The semantic pass keeps its own fixture trees one level down; they
    // are pinned by `dimacheck --self-check`, not by this tool.
    if (name == "dimacheck") continue;
    Tree tree;
    std::string error;
    if (!loadTree(entry.path(), &tree, &error)) {
      std::cerr << "self-check: fixture " << name << ": " << error << "\n";
      ++failures;
      continue;
    }
    std::set<std::string> tripped;
    const std::vector<Finding> findings = lintTree(tree);
    for (const Finding& f : findings) tripped.insert(f.rule);
    if (name == "clean") {
      if (!tripped.empty()) {
        std::cerr << "self-check FAIL: clean fixture tripped rules:\n";
        printFindings(findings);
        ++failures;
      }
    } else {
      coveredRules.insert(name);
      const std::set<std::string> expected{name};
      if (tripped != expected) {
        std::cerr << "self-check FAIL: fixture '" << name
                  << "' expected to trip exactly [" << name << "], got [";
        for (const std::string& r : tripped) std::cerr << r << " ";
        std::cerr << "]\n";
        printFindings(findings);
        ++failures;
      }
    }
  }
  for (const Rule& rule : kRules) {
    if (coveredRules.find(rule.id) == coveredRules.end()) {
      std::cerr << "self-check FAIL: rule '" << rule.id
                << "' has no fixture under " << fixturesRoot << "\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "dimalint self-check: " << std::size(kRules)
              << " rules, all fixtures behave as pinned\n";
    return 0;
  }
  return 1;
}

void usage() {
  std::cout
      << "usage: dimalint [--root DIR] | --self-check FIXTURES | "
         "--list-rules\n\n"
         "Lints the dimacol source tree (default --root .). See the file\n"
         "comment in tools/dimalint.cpp and DESIGN.md section 11.\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const Rule& rule : kRules) {
        std::cout << rule.id << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--self-check") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      return selfCheck(argv[i + 1]);
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    std::cerr << "dimalint: unknown argument '" << arg << "'\n";
    usage();
    return 2;
  }

  Tree tree;
  std::string error;
  if (!loadTree(root, &tree, &error)) {
    std::cerr << "dimalint: " << error << "\n";
    return 2;
  }
  const std::vector<Finding> findings = lintTree(tree);
  if (findings.empty()) {
    std::cout << "dimalint: " << tree.files.size() << " files, "
              << std::size(kRules) << " rules, clean\n";
    return 0;
  }
  printFindings(findings);
  std::cerr << "dimalint: " << findings.size() << " finding(s)\n";
  return 1;
}
