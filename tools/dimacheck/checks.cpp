#include "tools/dimacheck/checks.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace dimatool {

namespace {

bool isPunct(const Token& t, const char* s) {
  return t.kind == Tok::Punct && t.text == s;
}

std::size_t matchForward(const std::vector<Token>& t, std::size_t open,
                         const char* openSym, const char* closeSym) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (isPunct(t[k], openSym)) {
      ++depth;
    } else if (isPunct(t[k], closeSym)) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

const std::string& filePath(const Project& p, int file) {
  return p.tree->files[static_cast<std::size_t>(file)].path;
}

std::string at(const Project& p, int file, std::size_t line) {
  return filePath(p, file) + ":" + std::to_string(line);
}

void add(std::vector<CheckFinding>& out, const Project& p, const char* rule,
         int file, std::size_t line, std::string message,
         std::vector<std::string> trace = {}) {
  if (p.allowed(file, static_cast<std::uint32_t>(line), rule)) return;
  out.push_back(CheckFinding{rule, filePath(p, file), line,
                             std::move(message), std::move(trace)});
}

// ===========================================================================
// wire-taint — flow-sensitive, statement-ordered taint within each function.
//
// Sources: the project's untrusted byte readers — ByteReader/Reader
// take*(), the replica/log getU*() helpers, and the CSR image header
// fields. Sanitizers: a comparison adjacent to the value, DIMA_REQUIRE /
// assert / std::min / std::max / std::clamp enclosing it, or the
// WireLength::below() gate. Sinks, checked in that order: a multiplication
// (the PR-9 `samples*8` wrap — flagged even when the product feeds a
// comparison, because comparing a wrapped product bounds nothing), an
// array subscript, and allocation-sizing calls (resize/reserve/memcpy/...).

const std::set<std::string>& taintSources() {
  static const std::set<std::string> kSet = {
      "takeU8", "takeU16", "takeU32", "takeU64", "getU8",
      "getU16", "getU32",  "getU64",  "readU16", "readU32",
      "readU64"};
  return kSet;
}
const std::set<std::string>& memberSources() {
  static const std::set<std::string> kSet = {"numVertices", "numEdges",
                                             "maxDegree"};
  return kSet;
}
const std::set<std::string>& sinkCalls() {
  static const std::set<std::string> kSet = {
      "resize", "reserve", "memcpy", "memmove",
      "memset", "malloc",  "calloc", "alloca"};
  return kSet;
}
const std::set<std::string>& sanitizerCalls() {
  static const std::set<std::string> kSet = {
      "DIMA_REQUIRE", "DIMA_ASSERT", "assert", "min", "max", "clamp",
      "below"};
  return kSet;
}
bool isCmp(const Token& t) {
  return t.kind == Tok::Punct &&
         (t.text == "<" || t.text == "<=" || t.text == ">" ||
          t.text == ">=" || t.text == "==" || t.text == "!=");
}

struct Taint {
  std::string origin;  ///< source spelling, e.g. "takeU64"
  std::uint32_t line = 0;
};

/// One statement's worth of context: for every position, the stack of
/// enclosing call names and whether it sits inside a subscript.
struct StmtContext {
  std::vector<std::vector<std::string>> calls;
  std::vector<int> bracket;

  explicit StmtContext(const std::vector<Token>& t,
                       const std::vector<std::size_t>& st) {
    calls.resize(st.size());
    bracket.resize(st.size(), 0);
    std::vector<std::string> callStack;
    std::vector<char> groups;
    int brDepth = 0;
    for (std::size_t n = 0; n < st.size(); ++n) {
      calls[n] = callStack;
      bracket[n] = brDepth;
      const Token& tok = t[st[n]];
      if (isPunct(tok, "(")) {
        std::string name;
        if (n > 0 && t[st[n - 1]].kind == Tok::Ident) {
          name = std::string(t[st[n - 1]].text);
        }
        callStack.push_back(name);
        groups.push_back('(');
      } else if (isPunct(tok, ")")) {
        while (!groups.empty() && groups.back() != '(') {
          groups.pop_back();
          --brDepth;
        }
        if (!groups.empty()) {
          groups.pop_back();
          if (!callStack.empty()) callStack.pop_back();
        }
      } else if (isPunct(tok, "[")) {
        groups.push_back('[');
        ++brDepth;
      } else if (isPunct(tok, "]")) {
        while (!groups.empty() && groups.back() != '[') {
          groups.pop_back();
          if (!callStack.empty()) callStack.pop_back();
        }
        if (!groups.empty()) {
          groups.pop_back();
          --brDepth;
        }
      }
    }
  }

  bool inCallOf(std::size_t n, const std::set<std::string>& names) const {
    for (const std::string& c : calls[n]) {
      if (names.count(c) != 0) return true;
    }
    return false;
  }
};

/// The identifier key an occurrence refers to: "x", "a.b", or "a->b"
/// (one member level — enough for the decode structs the rule watches).
/// `occStart` receives the first token of the spelling.
std::string keyAt(const std::vector<Token>& t,
                  const std::vector<std::size_t>& st, std::size_t n,
                  std::size_t* occStart) {
  const Token& tok = t[st[n]];
  *occStart = n;
  if (tok.kind != Tok::Ident) return {};
  if (n >= 1 && (isPunct(t[st[n - 1]], ".") || isPunct(t[st[n - 1]], "->"))) {
    if (n >= 2 && t[st[n - 2]].kind == Tok::Ident) {
      *occStart = n - 2;
      return std::string(t[st[n - 2]].text) +
             std::string(t[st[n - 1]].text) + std::string(tok.text);
    }
    return {};  // deeper member chain; not tracked
  }
  if (n >= 1 && isPunct(t[st[n - 1]], "::")) return {};
  return std::string(tok.text);
}

/// Binary-multiplication adjacency for the value spelled in [occStart, n].
bool multAdjacent(const std::vector<Token>& t,
                  const std::vector<std::size_t>& st, std::size_t occStart,
                  std::size_t n) {
  if (n + 1 < st.size()) {
    const Token& next = t[st[n + 1]];
    if (isPunct(next, "*") && n + 2 < st.size()) {
      const Token& after = t[st[n + 2]];
      if (after.kind == Tok::Ident || after.kind == Tok::Number ||
          isPunct(after, "(")) {
        return true;
      }
    }
    if (isPunct(next, "*=")) return true;
  }
  if (occStart >= 1) {
    const Token& prev = t[st[occStart - 1]];
    if (isPunct(prev, "*") && occStart >= 2) {
      const Token& before = t[st[occStart - 2]];
      if (before.kind == Tok::Ident || before.kind == Tok::Number ||
          isPunct(before, ")") || isPunct(before, "]")) {
        return true;
      }
    }
  }
  return false;
}

bool cmpAdjacent(const std::vector<Token>& t,
                 const std::vector<std::size_t>& st, std::size_t occStart,
                 std::size_t n) {
  if (occStart >= 1 && isCmp(t[st[occStart - 1]])) return true;
  if (n + 1 < st.size() && isCmp(t[st[n + 1]])) return true;
  return false;
}

/// Source occurrence ending at index `n` of the statement: a call of a
/// reader (`name(`), possibly a method (`.name(`), or a header-field read
/// (`.numVertices`). Returns the source's spelling, or empty.
std::string sourceAt(const std::vector<Token>& t,
                     const std::vector<std::size_t>& st, std::size_t n) {
  const Token& tok = t[st[n]];
  if (tok.kind != Tok::Ident) return {};
  const std::string name(tok.text);
  if (taintSources().count(name) != 0 && n + 1 < st.size() &&
      isPunct(t[st[n + 1]], "(")) {
    return name;
  }
  if (memberSources().count(name) != 0 && n >= 1 &&
      (isPunct(t[st[n - 1]], ".") || isPunct(t[st[n - 1]], "->")) &&
      !(n + 1 < st.size() && isPunct(t[st[n + 1]], "("))) {
    return name;
  }
  return {};
}

void checkWireTaint(const Project& p, std::vector<CheckFinding>& out) {
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& def = p.defs[d];
    const std::vector<Token>& t =
        p.streams[static_cast<std::size_t>(def.file)].tokens;
    std::map<std::string, Taint> taint;

    std::vector<std::size_t> st;
    const auto flush = [&]() {
      if (st.empty()) return;
      const StmtContext ctx(t, st);

      // Pass 1 — occurrences of tainted keys and of raw sources.
      for (std::size_t n = 0; n < st.size(); ++n) {
        std::size_t occStart = n;
        const std::string key = keyAt(t, st, n, &occStart);
        const auto it = key.empty() ? taint.end() : taint.find(key);
        if (it != taint.end()) {
          const std::uint32_t line = t[st[n]].line;
          const std::vector<std::string> chain = {
              at(p, def.file, it->second.line) + ": `" + key +
              "` tainted by " + it->second.origin + "()"};
          if (multAdjacent(t, st, occStart, n)) {
            add(out, p, "wire-taint", def.file, line,
                "wire-sourced `" + key + "` (from " + it->second.origin +
                    ", line " + std::to_string(it->second.line) +
                    ") used as a multiplication operand before any bounds "
                    "check — the product can wrap the counting type "
                    "(PR-9 class); compare the factor first",
                chain);
            taint.erase(it);
          } else if (ctx.inCallOf(n, sanitizerCalls()) ||
                     cmpAdjacent(t, st, occStart, n)) {
            taint.erase(it);
          } else if (ctx.bracket[n] > 0) {
            add(out, p, "wire-taint", def.file, line,
                "wire-sourced `" + key + "` (from " + it->second.origin +
                    ") used as an array index before any bounds check",
                chain);
            taint.erase(it);
          } else if (ctx.inCallOf(n, sinkCalls())) {
            add(out, p, "wire-taint", def.file, line,
                "wire-sourced `" + key + "` (from " + it->second.origin +
                    ") used as an allocation/copy size before any bounds "
                    "check — DIMA_REQUIRE or compare it first",
                chain);
            taint.erase(it);
          }
          continue;
        }
        // Raw source used inline, no variable in between.
        const std::string src = sourceAt(t, st, n);
        if (!src.empty() && !ctx.inCallOf(n, sanitizerCalls())) {
          // The value's extent: for calls, through the matching ')'.
          std::size_t valEnd = n;
          if (n + 1 < st.size() && isPunct(t[st[n + 1]], "(")) {
            int depth = 0;
            for (std::size_t k = n + 1; k < st.size(); ++k) {
              if (isPunct(t[st[k]], "(")) ++depth;
              if (isPunct(t[st[k]], ")") && --depth == 0) {
                valEnd = k;
                break;
              }
            }
          }
          std::size_t occ = n >= 2 && (isPunct(t[st[n - 1]], ".") ||
                                       isPunct(t[st[n - 1]], "->"))
                                ? n - 2
                                : n;
          if (multAdjacent(t, st, occ, valEnd)) {
            add(out, p, "wire-taint", def.file, t[st[n]].line,
                "unchecked wire read " + src +
                    "() used directly as a multiplication operand — the "
                    "product can wrap the counting type (PR-9 class)");
          } else if (ctx.inCallOf(n, sinkCalls())) {
            add(out, p, "wire-taint", def.file, t[st[n]].line,
                "unchecked wire read " + src +
                    "() used directly as an allocation/copy size");
          }
        }
      }

      // Pass 2 — assignment: generate, propagate, or kill taint.
      std::size_t eq = st.size();
      for (std::size_t n = 0; n < st.size(); ++n) {
        if (!ctx.calls[n].empty() || ctx.bracket[n] > 0) continue;
        const Token& tok = t[st[n]];
        if (isPunct(tok, "=") || isPunct(tok, "+=") || isPunct(tok, "-=") ||
            isPunct(tok, "*=") || isPunct(tok, "|=") || isPunct(tok, "&=")) {
          eq = n;
          break;
        }
      }
      if (eq != st.size() && eq >= 1) {
        std::size_t lhsStart = eq - 1;
        const std::string lhsKey = keyAt(t, st, eq - 1, &lhsStart);
        if (!lhsKey.empty()) {
          std::string origin;
          std::uint32_t originLine = 0;
          bool gated = false;
          for (std::size_t n = eq + 1; n < st.size(); ++n) {
            const std::string src = sourceAt(t, st, n);
            if (!src.empty() && origin.empty()) {
              origin = src;
              originLine = t[st[n]].line;
            }
            if (t[st[n]].kind == Tok::Ident && t[st[n]].text == "below" &&
                n + 1 < st.size() && isPunct(t[st[n + 1]], "(")) {
              gated = true;  // WireLength::below() bound-gates the value
            }
            std::size_t occStart = n;
            const std::string key = keyAt(t, st, n, &occStart);
            if (!key.empty() && origin.empty()) {
              const auto it = taint.find(key);
              if (it != taint.end() && !cmpAdjacent(t, st, occStart, n)) {
                origin = it->second.origin;
                originLine = it->second.line;
              }
            }
          }
          if (!origin.empty() && !gated) {
            taint[lhsKey] = Taint{origin, originLine};
          } else {
            taint.erase(lhsKey);
          }
        }
      }
      st.clear();
    };

    for (std::size_t k = def.bodyBegin + 1; k < def.bodyEnd; ++k) {
      if (isPunct(t[k], ";") || isPunct(t[k], "{") || isPunct(t[k], "}")) {
        flush();
        continue;
      }
      st.push_back(k);
    }
    flush();
  }
}

// ===========================================================================
// single-writer-flow.

const std::set<std::string>& perNodeHooks() {
  // MatchingCore's per-node policy surface (src/automata/core.hpp): these
  // run concurrently across nodes inside a cycle, so anything they reach
  // must never fold shared state — that is the exclusive observer slot's
  // job (runSyncProtocol's barrier, DESIGN.md §10).
  static const std::set<std::string> kSet = {
      "participates",   "resetScratch",  "onActiveCycle", "chooseRole",
      "tailSubRounds",  "tailSend",      "tailReceive",   "onCycleEnd",
      "localWorkDone",  "pickInvitee",   "inviteMessage", "keepInvite",
      "overheardInvite", "chooseAccept", "acceptMessage", "onAcceptSent",
      "onEcho",         "onNoEcho",      "messageDetail"};
  return kSet;
}

bool isObserverSlot(const FunctionDef& def) {
  return def.observerSlot || def.name == "finishRoundAccounting";
}

void checkSingleWriter(const Project& p, std::vector<CheckFinding>& out) {
  // (a) Every CommitHalves::half() mutation must be EndpointHalf-minted:
  // the token must appear in the argument list (ownedBy/arcEnd minting
  // inline) or name a parameter/local of type EndpointHalf.
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& def = p.defs[d];
    const std::vector<Token>& t =
        p.streams[static_cast<std::size_t>(def.file)].tokens;
    for (std::size_t k = def.bodyBegin + 1; k + 1 < def.bodyEnd; ++k) {
      if (!(t[k].kind == Tok::Ident && t[k].text == "half")) continue;
      if (!(isPunct(t[k - 1], ".") || isPunct(t[k - 1], "->"))) continue;
      if (!isPunct(t[k + 1], "(")) continue;
      const std::size_t close = matchForward(t, k + 1, "(", ")");
      bool minted = false;
      std::vector<std::string> argIdents;
      for (std::size_t a = k + 2; a < close; ++a) {
        if (t[a].kind != Tok::Ident) continue;
        if (t[a].text == "EndpointHalf" || t[a].text == "ownedBy" ||
            t[a].text == "arcEnd") {
          minted = true;
          break;
        }
        argIdents.emplace_back(t[a].text);
      }
      if (!minted) {
        // An argument declared `EndpointHalf x` in this function's
        // parameters or body also proves the token was threaded through.
        for (const std::string& id : argIdents) {
          for (std::size_t q = def.paramsBegin; q < def.bodyEnd && !minted;
               ++q) {
            if (t[q].kind == Tok::Ident && t[q].text == "EndpointHalf") {
              for (std::size_t w = q + 1;
                   w < std::min(q + 4, static_cast<std::size_t>(def.bodyEnd));
                   ++w) {
                if (t[w].kind == Tok::Ident && t[w].text == id) {
                  minted = true;
                  break;
                }
              }
            }
          }
          if (minted) break;
        }
      }
      if (!minted) {
        add(out, p, "single-writer-flow", def.file, t[k].line,
            "CommitHalves::half() mutation in `" + def.qual +
                "` without an EndpointHalf token in sight — mint one via "
                "EndpointHalf::ownedBy()/arcEnd() or thread the parameter "
                "through (the single-writer commit discipline, "
                "src/automata/core.hpp)");
      }
    }
  }

  // (b) Observer-slot functions must be unreachable from per-node hooks.
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& root = p.defs[d];
    if (perNodeHooks().count(root.name) == 0) continue;
    // BFS with parent links for the chain trace.
    std::map<int, int> parent;  // def -> predecessor def (-1 for root)
    std::vector<int> queue{static_cast<int>(d)};
    parent[static_cast<int>(d)] = -1;
    int hit = -1;
    for (std::size_t qi = 0; qi < queue.size() && hit < 0; ++qi) {
      const int cur = queue[qi];
      for (const CallSite& cs :
           p.calls[static_cast<std::size_t>(cur)]) {
        for (const int nxt :
             p.resolve(p.defs[static_cast<std::size_t>(cur)].file, cs)) {
          if (parent.count(nxt) != 0) continue;
          parent[nxt] = cur;
          if (isObserverSlot(p.defs[static_cast<std::size_t>(nxt)])) {
            hit = nxt;
            break;
          }
          if (parent.size() < 512) queue.push_back(nxt);
        }
        if (hit >= 0) break;
      }
    }
    if (hit >= 0) {
      std::vector<std::string> chain;
      for (int cur = hit; cur != -1; cur = parent[cur]) {
        const FunctionDef& f = p.defs[static_cast<std::size_t>(cur)];
        chain.push_back(at(p, f.file, f.line) + ": " + f.qual);
      }
      std::reverse(chain.begin(), chain.end());
      add(out, p, "single-writer-flow", root.file, root.line,
          "per-node hook `" + root.qual + "` reaches observer-slot-only `" +
              p.defs[static_cast<std::size_t>(hit)].qual +
              "` — shared-state folding belongs to the exclusive observer "
              "slot, not to hooks that run concurrently across nodes",
          std::move(chain));
    }
  }
}

// ===========================================================================
// blocking-call-confinement.

const std::set<std::string>& blockingSyscalls() {
  static const std::set<std::string> kSet = {
      "socket",  "connect",  "bind",       "listen",     "accept",
      "accept4", "poll",     "ppoll",      "select",     "send",
      "recv",    "sendto",   "recvfrom",   "sendmsg",    "recvmsg",
      "setsockopt", "getsockopt", "shutdown"};
  return kSet;
}
/// Unambiguous even unqualified ("send" or "bind" could be a project
/// function or std::bind, so those require the ::-spelling).
const std::set<std::string>& bareBlockingSyscalls() {
  static const std::set<std::string> kSet = {
      "poll",    "ppoll",    "sendto",     "recvfrom", "sendmsg",
      "recvmsg", "setsockopt", "getsockopt", "socket",  "recv",
      "accept4"};
  return kSet;
}

void checkBlockingConfinement(const Project& p,
                              std::vector<CheckFinding>& out) {
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& def = p.defs[d];
    if (filePath(p, def.file) == "src/service/transport.cpp") continue;
    for (const CallSite& cs : p.calls[d]) {
      const bool direct =
          (cs.global && blockingSyscalls().count(cs.name) != 0) ||
          (!cs.method && cs.qual == cs.name &&
           bareBlockingSyscalls().count(cs.name) != 0);
      if (!direct) continue;
      // Call-graph context: who reaches this leaky function.
      std::vector<std::string> trace{
          at(p, def.file, def.line) + ": defined in `" + def.qual + "`"};
      int shown = 0;
      for (std::size_t c = 0; c < p.defs.size() && shown < 3; ++c) {
        if (c == d) continue;
        for (const CallSite& up : p.calls[c]) {
          if (up.name != def.name) continue;
          const std::vector<int> res =
              p.resolve(p.defs[c].file, up);
          if (std::find(res.begin(), res.end(), static_cast<int>(d)) !=
              res.end()) {
            const FunctionDef& caller = p.defs[c];
            trace.push_back(at(p, caller.file, up.line) +
                            ": reached from `" + caller.qual + "`");
            ++shown;
            break;
          }
        }
      }
      add(out, p, "blocking-call-confinement", def.file, cs.line,
          "blocking syscall `" + cs.qual +
              "` outside src/service/transport.cpp — the transport is one "
              "TU deep by design (PROTOCOLS.md §12.6); everything else "
              "speaks fds and byte buffers",
          std::move(trace));
    }
  }
}

// ===========================================================================
// hot-path-reachability.

struct BannedHit {
  int file = -1;
  std::uint32_t line = 0;
  std::string token;
};

std::optional<BannedHit> scanRegion(const Project& p, int file,
                                    std::size_t begin, std::size_t end) {
  const std::vector<Token>& t =
      p.streams[static_cast<std::size_t>(file)].tokens;
  for (std::size_t k = begin; k < end && k < t.size(); ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string_view s = t[k].text;
    if (s == "new") {
      // `operator new(...)` is the raw allocator — always a hit. A plain
      // `new (` is placement new (construct-in-place, no allocation)
      // unless the placement args name std::nothrow.
      const bool allocFn = k >= 1 && t[k - 1].kind == Tok::Ident &&
                           t[k - 1].text == "operator";
      if (!allocFn && k + 1 < t.size() && isPunct(t[k + 1], "(")) {
        const std::size_t close = matchForward(t, k + 1, "(", ")");
        bool nothrow = false;
        for (std::size_t j = k + 2; j < close && j < t.size(); ++j) {
          if (t[j].kind == Tok::Ident && t[j].text == "nothrow") {
            nothrow = true;
            break;
          }
        }
        if (!nothrow) {
          k = close;  // placement form: skip the placement args
          continue;
        }
      }
      return BannedHit{file, t[k].line, "new"};
    }
    if (s == "malloc" || s == "calloc" || s == "throw") {
      return BannedHit{file, t[k].line, std::string(s)};
    }
    if (s == "std" && k + 2 < end && isPunct(t[k + 1], "::") &&
        t[k + 2].kind == Tok::Ident) {
      const std::string_view w = t[k + 2].text;
      if (w == "function" || w == "bind" || w == "map" ||
          w == "unordered_map" || w == "list" || w == "deque") {
        return BannedHit{file, t[k].line, "std::" + std::string(w)};
      }
    }
  }
  return std::nullopt;
}

struct HotPathWalker {
  const Project& p;
  /// Per def: 0 = unvisited, 1 = in progress (cycle guard), 2 = done.
  std::map<int, int> state;
  std::map<int, std::optional<BannedHit>> verdict;
  std::map<int, int> via;  ///< def -> callee leading to the hit

  std::optional<BannedHit> walk(int d, int depth) {
    if (depth > 16) return std::nullopt;
    const auto st = state.find(d);
    if (st != state.end()) {
      return st->second == 2 ? verdict[d] : std::nullopt;
    }
    state[d] = 1;
    const FunctionDef& def = p.defs[static_cast<std::size_t>(d)];
    std::optional<BannedHit> hit =
        scanRegion(p, def.file, def.bodyBegin + 1, def.bodyEnd);
    if (!hit) {
      for (const CallSite& cs : p.calls[static_cast<std::size_t>(d)]) {
        for (const int nxt : p.resolve(def.file, cs)) {
          if (const auto sub = walk(nxt, depth + 1)) {
            hit = sub;
            via[d] = nxt;
            break;
          }
        }
        if (hit) break;
      }
    }
    state[d] = 2;
    verdict[d] = hit;
    return hit;
  }

  std::vector<std::string> chainFrom(int d) const {
    std::vector<std::string> chain;
    int cur = d;
    while (true) {
      const FunctionDef& f = p.defs[static_cast<std::size_t>(cur)];
      chain.push_back(at(p, f.file, f.line) + ": " + f.qual);
      const auto it = via.find(cur);
      if (it == via.end()) break;
      cur = it->second;
    }
    return chain;
  }
};

void checkHotPath(const Project& p, std::vector<CheckFinding>& out) {
  HotPathWalker walker{p};
  const auto report = [&](int rootFile, std::uint32_t rootLine,
                          const std::string& rootLabel,
                          const BannedHit& hit,
                          std::vector<std::string> chain) {
    chain.insert(chain.begin(),
                 at(p, rootFile, rootLine) + ": hot-path root " + rootLabel);
    chain.push_back(at(p, hit.file, hit.line) + ": `" + hit.token + "`");
    add(out, p, "hot-path-reachability", hit.file, hit.line,
        "`" + hit.token + "` reachable from hot-path root " + rootLabel +
            " — word-parallel round loops must not allocate, throw, or "
            "dispatch through std::function (DESIGN.md §12)",
        std::move(chain));
  };

  // Roots (a): functions annotated `// dimacheck: hot-path`.
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& def = p.defs[d];
    if (!def.hotPath) continue;
    if (const auto hit = walker.walk(static_cast<int>(d), 0)) {
      report(def.file, def.line, "`" + def.qual + "`", *hit,
             walker.chainFrom(static_cast<int>(d)));
    }
  }

  // Roots (b): every lambda passed to forPlaneWords() — the bit-plane
  // engines' word-chunked inner loops.
  for (std::size_t d = 0; d < p.defs.size(); ++d) {
    const FunctionDef& def = p.defs[d];
    const std::vector<Token>& t =
        p.streams[static_cast<std::size_t>(def.file)].tokens;
    for (const CallSite& cs : p.calls[d]) {
      if (cs.name != "forPlaneWords") continue;
      const std::size_t open = cs.tok + 1;
      const std::size_t close = matchForward(t, open, "(", ")");
      for (std::size_t k = open + 1; k < close; ++k) {
        if (!isPunct(t[k], "[")) continue;
        const std::size_t captureClose = matchForward(t, k, "[", "]");
        if (captureClose >= close) break;
        std::size_t j = captureClose + 1;
        if (j < close && isPunct(t[j], "(")) {
          j = matchForward(t, j, "(", ")") + 1;
        }
        while (j < close && t[j].kind == Tok::Ident) ++j;  // mutable etc.
        if (j >= close || !isPunct(t[j], "{")) continue;
        const std::size_t bodyClose = matchForward(t, j, "{", "}");
        // The lambda body itself, then everything it calls.
        if (const auto hit =
                scanRegion(p, def.file, j + 1, bodyClose)) {
          report(def.file, t[cs.tok].line,
                 "forPlaneWords lambda in `" + def.qual + "`", *hit, {});
        } else {
          for (const CallSite& inner : p.calls[d]) {
            if (inner.tok <= j || inner.tok >= bodyClose) continue;
            for (const int nxt : p.resolve(def.file, inner)) {
              if (const auto sub = walker.walk(nxt, 0)) {
                report(def.file, t[cs.tok].line,
                       "forPlaneWords lambda in `" + def.qual + "`", *sub,
                       walker.chainFrom(nxt));
                break;
              }
            }
          }
        }
        k = bodyClose;
      }
    }
  }
}

}  // namespace

const std::vector<CheckRule>& checkRules() {
  static const std::vector<CheckRule> kRules = {
      {"wire-taint",
       "wire-decoded integers pass a bounds check before sizing, indexing, "
       "or multiplying"},
      {"single-writer-flow",
       "CommitHalves mutations are EndpointHalf-minted; observer-slot "
       "functions unreachable from per-node hooks"},
      {"blocking-call-confinement",
       "socket/poll syscalls stay confined to src/service/transport.cpp "
       "across the call graph"},
      {"hot-path-reachability",
       "no allocation/throw/indirection reachable from forPlaneWords "
       "lambdas or dimacheck: hot-path functions"},
  };
  return kRules;
}

std::vector<CheckFinding> runChecks(const Project& p) {
  std::vector<CheckFinding> out;
  checkWireTaint(p, out);
  checkSingleWriter(p, out);
  checkBlockingConfinement(p, out);
  checkHotPath(p, out);
  return out;
}

}  // namespace dimatool
