#pragma once

/// \file lex.hpp
/// The shared lexing layer under both project static checkers:
///
///  * `dimalint` (tools/dimalint.cpp) — token-level convention rules —
///    uses the string-oriented half: comment/string stripping, whole-token
///    search, enum-class parsing, and the `Tree` loader.
///  * `dimacheck` (tools/dimacheck/) — the cross-TU semantic pass — uses
///    `lexFile`, a real tokenizer with preprocessor-conditional awareness
///    that additionally surfaces include directives and the `// dimacheck:`
///    annotation comments the semantic rules key on.
///
/// Both tools must stay dependency-free (no libclang): they build wherever
/// the project builds and run on every CI push, GCC containers included.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace dimatool {

/// One scanned source file: repo-relative path, raw text, and the text with
/// comments and string/char literals blanked (newlines preserved so offsets
/// map to line numbers).
struct SourceFile {
  std::string path;
  std::string raw;
  std::string code;
};

struct Tree {
  std::filesystem::path root;
  std::vector<SourceFile> files;  // sorted by path

  const SourceFile* find(const std::string& relPath) const;
};

/// Blanks comments, string literals (including raw strings), and char
/// literals; every replaced character becomes a space, newlines survive.
std::string stripCommentsAndStrings(const std::string& in);

/// 1-based line number of `offset` in `text`.
std::size_t lineOf(const std::string& text, std::size_t offset);

/// Whole-token occurrence check: `needle` present in `hay` with no
/// identifier character on either side.
bool containsToken(const std::string& hay, const std::string& needle);

struct Enumerator {
  std::string name;
  std::size_t line = 0;
};

/// Parses the enumerators of `enum class <enumName> ... { A, B, ... };`
/// from stripped code. Empty when the enum is absent.
std::vector<Enumerator> parseEnumClass(const SourceFile& f,
                                       const std::string& enumName);

/// Loads every .hpp/.cpp under `root`/src into `tree` (stripped text
/// precomputed). False with `*error` when src/ is absent.
bool loadTree(const std::filesystem::path& root, Tree* tree,
              std::string* error);

// ---------------------------------------------------------------------------
// Token stream (dimacheck's substrate).

enum class Tok : unsigned char {
  Ident,   ///< identifier or keyword
  Number,  ///< numeric literal (incl. suffixes)
  Str,     ///< string literal, contents not retained in `text`
  Chr,     ///< char literal
  Punct,   ///< operator/punctuator, longest-match (e.g. "::", "->", "<=")
};

struct Token {
  Tok kind;
  std::string_view text;  ///< view into the raw file text
  std::uint32_t line = 0;
  std::uint32_t offset = 0;
};

/// A comment that carries a checker annotation (`dimacheck:` /
/// `dimalint:`); other comments are dropped at lexing time.
struct CommentNote {
  std::uint32_t line = 0;
  std::string text;
};

struct IncludeDirective {
  std::uint32_t line = 0;
  std::string path;  ///< as written, e.g. "src/net/engine.hpp" or "poll.h"
  bool angled = false;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<CommentNote> notes;
  std::vector<IncludeDirective> includes;
};

/// Lexes raw C++ text. Preprocessor handling:
///  * directives themselves emit no tokens; `#include` paths and
///    annotation comments are captured on the side;
///  * a literal `#if 0` region is skipped up to its matching `#else` /
///    `#elif` / `#endif` (nesting respected) — dead fixture code cannot
///    trip or mask a rule;
///  * all other conditional branches are lexed (both sides analyzed —
///    the checks are conservative across configurations);
///  * `#define` bodies are skipped, so macro innards (e.g. DIMA_REQUIRE's
///    abort plumbing) never masquerade as definitions or calls.
///
/// The returned views point into `raw`, which must outlive the stream.
TokenStream lexFile(const std::string& raw);

}  // namespace dimatool
