#pragma once

/// \file model.hpp
/// The semantic model `dimacheck` builds over the lexed tree: a per-TU
/// symbol table of function definitions (heuristic, parser-free — see
/// `buildProject`), the call sites inside each body, the project include
/// graph, and name resolution that prefers the including TU's visible set.
/// Also the `compile_commands.json` reader and its freshness check.
///
/// The extraction is deliberately a disciplined heuristic, not a compiler
/// front-end: it recognizes the shapes this codebase actually uses
/// (namespaces, classes, ctor-init lists, trailing return types,
/// thread-safety annotation macros) and bails conservatively on anything
/// else. The self-check fixtures pin the shapes each rule depends on.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tools/dimacheck/lex.hpp"

namespace dimatool {

struct FunctionDef {
  std::string name;  ///< last component, e.g. "finishRoundAccounting"
  std::string qual;  ///< scoped spelling, e.g. "MatchingDiscovery::finishRoundAccounting"
  int file = -1;
  std::uint32_t line = 0;
  std::uint32_t paramsBegin = 0;  ///< token index of '('
  std::uint32_t paramsEnd = 0;    ///< token index of matching ')'
  std::uint32_t bodyBegin = 0;    ///< token index of '{'
  std::uint32_t bodyEnd = 0;      ///< token index of matching '}'
  bool hotPath = false;       ///< `// dimacheck: hot-path` at the definition
  bool observerSlot = false;  ///< `// dimacheck: observer-slot`
};

struct CallSite {
  std::string name;   ///< callee's last component
  std::string qual;   ///< full spelling, e.g. "EndpointHalf::ownedBy" or "::poll"
  bool method = false;   ///< receiver.name(...) or receiver->name(...)
  bool global = false;   ///< spelled ::name(...)
  std::uint32_t tok = 0;  ///< token index of the callee name
  std::uint32_t line = 0;
};

struct Project {
  const Tree* tree = nullptr;
  std::vector<TokenStream> streams;          // parallel to tree->files
  std::vector<FunctionDef> defs;
  std::vector<std::vector<CallSite>> calls;  // parallel to defs
  std::multimap<std::string, int> byName;    // def name -> def index
  std::vector<std::vector<int>> fileDefs;    // per file: def indices
  /// Per file: file indices whose definitions are reachable from it —
  /// the include closure, plus each visible header's sibling .cpp (the
  /// linker edge: declared in x.hpp, defined in x.cpp).
  std::vector<std::set<int>> visible;

  /// Candidate definitions for a call made from `fromFile`: same file
  /// first, then the visible set. A qualified call (`Scope::name`) keeps
  /// only candidates whose scoped spelling matches. Empty when unresolved
  /// (std::, macros, lambdas — the rules skip those edges).
  std::vector<int> resolve(int fromFile, const CallSite& cs) const;

  /// True when `// dimacheck: allow(<rule>)` annotates this or the
  /// previous line.
  bool allowed(int file, std::uint32_t line, const std::string& rule) const;

  /// True when an annotation comment containing `needle` sits on
  /// `line` or up to two lines above (where doc comments live).
  bool noteNear(int file, std::uint32_t line, const std::string& needle) const;
};

/// Lexes every file, extracts definitions and call sites, and computes the
/// include closure. `tree` must outlive `p`.
void buildProject(const Tree& tree, Project* p);

/// Reads the "file" entries out of a `compile_commands.json`. Tolerant
/// hand parser (the format is a flat array of objects with string values);
/// false with `*error` when the file is unreadable or no entries parse.
bool loadCompileDb(const std::string& path, std::vector<std::string>* files,
                   std::string* error);

/// Translation units present on disk (tree) but missing from the database —
/// non-empty means the database is stale and must be regenerated.
std::vector<std::string> staleDbEntries(const Tree& tree,
                                        const std::vector<std::string>& dbFiles);

}  // namespace dimatool
