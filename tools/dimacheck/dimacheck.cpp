// dimacheck — the cross-TU semantic analysis pass.
//
// Where dimalint checks token-level conventions file by file, dimacheck
// builds a project model (symbol table + include/call graph, model.hpp) and
// runs four flow-sensitive rules over it (checks.hpp): wire-taint,
// single-writer-flow, blocking-call-confinement, hot-path-reachability.
//
// Modes:
//   dimacheck [--root DIR] [--compile-db FILE] [--cache FILE] [--sarif FILE]
//   dimacheck --check-db FILE [--root DIR]    freshness check only
//   dimacheck --self-check FIXTURES_DIR       fixture protocol (see below)
//   dimacheck --list-rules
//
// Exit codes: 0 clean / self-check passed, 1 findings, 2 usage or
// database errors (unreadable, unparsable, or stale compile_commands.json).
//
// Self-check protocol (mirrors dimalint's): every top-level directory under
// the fixtures root must be named after exactly one rule id — its tree must
// trip that rule and no other — or `clean`, which must trip nothing. The
// wire-taint fixture is additionally pinned to produce a multiplication
// finding: the `samples * 8` length-check wrap that PR 9 fixed must stay
// flagged forever.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/dimacheck/checks.hpp"
#include "tools/dimacheck/lex.hpp"
#include "tools/dimacheck/model.hpp"

namespace fs = std::filesystem;
using namespace dimatool;

namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool readFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void printFinding(const CheckFinding& f) {
  std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
              f.message.c_str());
  for (const std::string& step : f.trace) {
    std::printf("    %s\n", step.c_str());
  }
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool writeSarif(const fs::path& path,
                const std::vector<CheckFinding>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"dimacheck\", "
         "\"rules\": [";
  bool firstRule = true;
  for (const CheckRule& r : checkRules()) {
    out << (firstRule ? "" : ", ") << "{\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << jsonEscape(r.summary)
        << "\"}}";
    firstRule = false;
  }
  out << "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const CheckFinding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n      {\"ruleId\": \"" << f.rule
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << jsonEscape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << jsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << f.line << "}}}]}";
  }
  out << "\n    ]\n  }]\n}\n";
  return static_cast<bool>(out);
}

/// Freshness gate for --compile-db / --check-db. Returns 0 when fresh,
/// 2 (with a regenerate hint) when unreadable or stale.
int checkCompileDb(const Tree& tree, const std::string& dbPath) {
  std::vector<std::string> dbFiles;
  std::string error;
  if (!loadCompileDb(dbPath, &dbFiles, &error)) {
    std::fprintf(stderr, "dimacheck: cannot use compile db %s: %s\n",
                 dbPath.c_str(), error.c_str());
    std::fprintf(stderr,
                 "dimacheck: regenerate with: cmake -B build -S .\n");
    return 2;
  }
  const std::vector<std::string> stale = staleDbEntries(tree, dbFiles);
  if (!stale.empty()) {
    std::fprintf(stderr,
                 "dimacheck: compile db %s is stale — %zu translation "
                 "unit(s) on disk are missing from it:\n",
                 dbPath.c_str(), stale.size());
    for (const std::string& s : stale) {
      std::fprintf(stderr, "  %s\n", s.c_str());
    }
    std::fprintf(stderr,
                 "dimacheck: regenerate with: cmake -B build -S . "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS is already ON)\n");
    return 2;
  }
  return 0;
}

int selfCheck(const fs::path& fixturesRoot) {
  if (!fs::exists(fixturesRoot)) {
    std::fprintf(stderr, "dimacheck: no fixtures at %s\n",
                 fixturesRoot.string().c_str());
    return 2;
  }
  std::set<std::string> ruleIds;
  for (const CheckRule& r : checkRules()) ruleIds.insert(r.id);

  bool ok = true;
  std::set<std::string> covered;
  for (const auto& entry : fs::directory_iterator(fixturesRoot)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    const bool isClean = name == "clean";
    if (!isClean && ruleIds.count(name) == 0) {
      std::printf("FAIL %s: not a dimacheck rule id (stale fixture?)\n",
                  name.c_str());
      ok = false;
      continue;
    }

    Tree tree;
    std::string error;
    if (!loadTree(entry.path(), &tree, &error)) {
      std::printf("FAIL %s: %s\n", name.c_str(), error.c_str());
      ok = false;
      continue;
    }
    Project project;
    buildProject(tree, &project);
    const std::vector<CheckFinding> findings = runChecks(project);

    if (isClean) {
      if (findings.empty()) {
        std::printf("ok   clean: no findings\n");
      } else {
        std::printf("FAIL clean: %zu unexpected finding(s)\n",
                    findings.size());
        for (const CheckFinding& f : findings) printFinding(f);
        ok = false;
      }
      continue;
    }

    covered.insert(name);
    bool tripsOwn = false;
    bool tripsOther = false;
    bool multPin = false;
    for (const CheckFinding& f : findings) {
      if (f.rule == name) {
        tripsOwn = true;
        if (f.message.find("multiplication") != std::string::npos) {
          multPin = true;
        }
      } else {
        tripsOther = true;
        std::printf("FAIL %s: cross-fire from rule %s\n", name.c_str(),
                    f.rule.c_str());
        printFinding(f);
      }
    }
    if (!tripsOwn) {
      std::printf("FAIL %s: fixture did not trip its rule\n", name.c_str());
      ok = false;
    } else if (name == "wire-taint" && !multPin) {
      // The regression the whole rule exists for: wire length * element
      // size overflowing the comparison type (fixed in PR 9).
      std::printf(
          "FAIL wire-taint: fixture no longer yields a multiplication "
          "finding (samples*8 regression pin)\n");
      ok = false;
    } else if (!tripsOther) {
      std::printf("ok   %s\n", name.c_str());
    } else {
      ok = false;
    }
  }
  for (const std::string& id : ruleIds) {
    if (covered.count(id) == 0) {
      std::printf("FAIL %s: rule has no fixture directory\n", id.c_str());
      ok = false;
    }
  }
  std::printf("%s\n", ok ? "self-check passed" : "self-check FAILED");
  return ok ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dimacheck [--root DIR] [--compile-db FILE] [--cache FILE]\n"
      "                 [--sarif FILE]\n"
      "       dimacheck --check-db FILE [--root DIR]\n"
      "       dimacheck --self-check FIXTURES_DIR\n"
      "       dimacheck --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string compileDb;
  std::string cachePath;
  std::string sarifPath;
  std::string checkDbOnly;
  std::string selfCheckDir;
  bool listRules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (arg == "--root" && value(&v)) {
      root = v;
    } else if (arg == "--compile-db" && value(&v)) {
      compileDb = v;
    } else if (arg == "--cache" && value(&v)) {
      cachePath = v;
    } else if (arg == "--sarif" && value(&v)) {
      sarifPath = v;
    } else if (arg == "--check-db" && value(&v)) {
      checkDbOnly = v;
    } else if (arg == "--self-check" && value(&v)) {
      selfCheckDir = v;
    } else if (arg == "--list-rules") {
      listRules = true;
    } else {
      return usage();
    }
  }

  if (listRules) {
    for (const CheckRule& r : checkRules()) {
      std::printf("%-26s %s\n", r.id, r.summary);
    }
    return 0;
  }
  if (!selfCheckDir.empty()) return selfCheck(selfCheckDir);

  Tree tree;
  std::string error;
  if (!loadTree(root, &tree, &error)) {
    std::fprintf(stderr, "dimacheck: %s\n", error.c_str());
    return 2;
  }

  if (!checkDbOnly.empty()) {
    const int rc = checkCompileDb(tree, checkDbOnly);
    if (rc == 0) {
      std::printf("dimacheck: compile db %s is fresh\n",
                  checkDbOnly.c_str());
    }
    return rc;
  }

  if (!compileDb.empty()) {
    // The cache keys on the database bytes plus the on-disk TU list: a hit
    // means the freshness verdict cannot have changed, so the parse and
    // the stale scan are both skipped (this is what CI caches).
    std::string digest;
    if (!cachePath.empty()) {
      std::string dbBytes;
      if (readFile(compileDb, &dbBytes)) {
        std::string key = dbBytes;
        for (const SourceFile& f : tree.files) {
          key += '\n';
          key += f.path;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(fnv1a64(key)));
        digest = buf;
      }
    }
    bool cacheHit = false;
    if (!digest.empty()) {
      std::string cached;
      if (readFile(cachePath, &cached) &&
          cached.substr(0, digest.size()) == digest) {
        cacheHit = true;
        std::printf("dimacheck: compile db cache hit (%s)\n",
                    digest.c_str());
      }
    }
    if (!cacheHit) {
      const int rc = checkCompileDb(tree, compileDb);
      if (rc != 0) return rc;
      if (!digest.empty()) {
        std::ofstream out(cachePath, std::ios::binary);
        out << digest << "\n";
      }
    }
  }

  Project project;
  buildProject(tree, &project);
  const std::vector<CheckFinding> findings = runChecks(project);

  if (!sarifPath.empty() && !writeSarif(sarifPath, findings)) {
    std::fprintf(stderr, "dimacheck: cannot write %s\n", sarifPath.c_str());
    return 2;
  }

  for (const CheckFinding& f : findings) printFinding(f);
  if (findings.empty()) {
    std::printf("dimacheck: clean (%zu files, %zu functions)\n",
                tree.files.size(), project.defs.size());
    return 0;
  }
  std::printf("dimacheck: %zu finding(s)\n", findings.size());
  return 1;
}
