#include "tools/dimacheck/lex.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dimatool {

namespace fs = std::filesystem;

const SourceFile* Tree::find(const std::string& relPath) const {
  for (const SourceFile& f : files) {
    if (f.path == relPath) return &f;
  }
  return nullptr;
}

std::string stripCommentsAndStrings(const std::string& in) {
  std::string out(in.size(), ' ');
  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string rawDelim;  // raw-string delimiter, including the closing paren
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (st) {
      case St::Code:
        if (c == '/' && next == '/') {
          st = St::Line;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::Block;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          const std::size_t open = in.find('(', i + 2);
          if (open != std::string::npos) {
            rawDelim = ")" + in.substr(i + 2, open - i - 2) + "\"";
            st = St::Raw;
            i = open;
          }
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        } else {
          out[i] = c;
        }
        break;
      case St::Line:
        if (c == '\n') st = St::Code;
        break;
      case St::Block:
        if (c == '*' && next == '/') {
          st = St::Code;
          ++i;
        }
        break;
      case St::Str:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          st = St::Code;
        }
        break;
      case St::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        }
        break;
      case St::Raw:
        if (in.compare(i, rawDelim.size(), rawDelim) == 0) {
          i += rawDelim.size() - 1;
          st = St::Code;
        }
        break;
    }
  }
  return out;
}

std::size_t lineOf(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<long>(offset), '\n'));
}

bool containsToken(const std::string& hay, const std::string& needle) {
  const auto isIdent = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    const bool leftOk = pos == 0 || !isIdent(hay[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool rightOk = end >= hay.size() || !isIdent(hay[end]);
    if (leftOk && rightOk) return true;
    pos += 1;
  }
  return false;
}

std::vector<Enumerator> parseEnumClass(const SourceFile& f,
                                       const std::string& enumName) {
  std::vector<Enumerator> out;
  const std::string key = "enum class " + enumName;
  std::size_t pos = f.code.find(key);
  if (pos == std::string::npos) return out;
  const std::size_t open = f.code.find('{', pos);
  const std::size_t close = f.code.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return out;
  std::size_t i = open + 1;
  while (i < close) {
    while (i < close && !(std::isalpha(static_cast<unsigned char>(
                              f.code[i])) ||
                          f.code[i] == '_')) {
      ++i;
    }
    if (i >= close) break;
    std::size_t j = i;
    while (j < close && (std::isalnum(static_cast<unsigned char>(
                             f.code[j])) ||
                         f.code[j] == '_')) {
      ++j;
    }
    out.push_back(Enumerator{f.code.substr(i, j - i), lineOf(f.code, i)});
    // Skip to the comma ending this enumerator (ignores `= value` parts).
    const std::size_t comma = f.code.find(',', j);
    if (comma == std::string::npos || comma > close) break;
    i = comma + 1;
  }
  return out;
}

bool loadTree(const fs::path& root, Tree* tree, std::string* error) {
  tree->root = root;
  tree->files.clear();
  const fs::path srcRoot = root / "src";
  if (!fs::exists(srcRoot)) {
    *error = "no src/ directory under " + root.string();
    return false;
  }
  for (const auto& entry : fs::recursive_directory_iterator(srcRoot)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile f;
    f.path = fs::relative(entry.path(), root).generic_string();
    f.raw = buf.str();
    f.code = stripCommentsAndStrings(f.raw);
    tree->files.push_back(std::move(f));
  }
  std::sort(tree->files.begin(), tree->files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

// ---------------------------------------------------------------------------
// Tokenizer.

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuators, longest first within each length class.
const char* const kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char* const kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                               "!=", "&&", "||", "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^=", "++", "--"};

struct Cursor {
  const std::string& raw;
  std::size_t i = 0;
  std::uint32_t line = 1;

  bool done() const { return i >= raw.size(); }
  char at(std::size_t k) const {
    return k < raw.size() ? raw[k] : '\0';
  }
  char cur() const { return at(i); }
  char peek() const { return at(i + 1); }
  void advance() {
    if (raw[i] == '\n') ++line;
    ++i;
  }
  void advanceBy(std::size_t n) {
    for (std::size_t k = 0; k < n && i < raw.size(); ++k) advance();
  }
};

/// Captures a comment's text (without the marker) and whether it holds an
/// annotation worth keeping.
void noteComment(TokenStream* out, std::uint32_t line,
                 std::string_view text) {
  if (text.find("dimacheck:") != std::string_view::npos ||
      text.find("dimalint:") != std::string_view::npos) {
    out->notes.push_back(CommentNote{line, std::string(text)});
  }
}

/// Skips a // comment; cursor is on the first '/'.
void skipLineComment(Cursor* c, TokenStream* out) {
  const std::uint32_t line = c->line;
  const std::size_t begin = c->i;
  while (!c->done() && c->cur() != '\n') c->advance();
  noteComment(out, line,
              std::string_view(c->raw).substr(begin, c->i - begin));
}

/// Skips a /* */ comment; cursor is on the first '/'.
void skipBlockComment(Cursor* c, TokenStream* out) {
  const std::uint32_t line = c->line;
  const std::size_t begin = c->i;
  c->advanceBy(2);
  while (!c->done() && !(c->cur() == '*' && c->peek() == '/')) c->advance();
  c->advanceBy(2);
  noteComment(out, line,
              std::string_view(c->raw).substr(begin, c->i - begin));
}

/// Skips a string/char/raw literal; cursor is on the opening quote (or 'R').
void skipLiteral(Cursor* c) {
  if (c->cur() == 'R' && c->peek() == '"') {
    const std::size_t open = c->raw.find('(', c->i + 2);
    if (open == std::string::npos) {
      c->advanceBy(c->raw.size() - c->i);
      return;
    }
    const std::string delim =
        ")" + c->raw.substr(c->i + 2, open - c->i - 2) + "\"";
    const std::size_t end = c->raw.find(delim, open);
    const std::size_t stop =
        end == std::string::npos ? c->raw.size() : end + delim.size();
    c->advanceBy(stop - c->i);
    return;
  }
  const char quote = c->cur();
  c->advance();
  while (!c->done()) {
    if (c->cur() == '\\') {
      c->advanceBy(2);
      continue;
    }
    if (c->cur() == quote) {
      c->advance();
      return;
    }
    c->advance();
  }
}

/// Advances past the logical end of a directive line (honors backslash
/// continuations; comments inside are still note-scanned). Returns the
/// directive body as a string (comments excluded) for `#if` inspection.
std::string skipDirectiveBody(Cursor* c, TokenStream* out) {
  std::string body;
  while (!c->done()) {
    const char ch = c->cur();
    if (ch == '\n') {
      // Continuation if the last non-ws char was a backslash.
      std::size_t k = body.size();
      while (k > 0 && (body[k - 1] == ' ' || body[k - 1] == '\t')) --k;
      if (k > 0 && body[k - 1] == '\\') {
        body.resize(k - 1);
        c->advance();
        continue;
      }
      return body;
    }
    if (ch == '/' && c->peek() == '/') {
      skipLineComment(c, out);
      continue;
    }
    if (ch == '/' && c->peek() == '*') {
      skipBlockComment(c, out);
      body.push_back(' ');
      continue;
    }
    body.push_back(ch);
    c->advance();
  }
  return body;
}

std::string trimmed(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

}  // namespace

TokenStream lexFile(const std::string& raw) {
  TokenStream out;
  Cursor c{raw};
  bool atLineStart = true;  // only whitespace seen since the last newline
  // Depth of `#if 0` skipping: 0 = live code. When >0, only directives are
  // interpreted until the region closes.
  int deadDepth = 0;
  // Nesting of conditionals inside a dead region.
  int deadNesting = 0;

  while (!c.done()) {
    const char ch = c.cur();
    if (ch == '\n') {
      atLineStart = true;
      c.advance();
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
      c.advance();
      continue;
    }
    if (ch == '/' && c.peek() == '/') {
      skipLineComment(&c, &out);
      continue;
    }
    if (ch == '/' && c.peek() == '*') {
      skipBlockComment(&c, &out);
      atLineStart = false;
      continue;
    }
    if (ch == '#' && atLineStart) {
      const std::uint32_t dirLine = c.line;
      c.advance();
      while (!c.done() && (c.cur() == ' ' || c.cur() == '\t')) c.advance();
      std::size_t nb = c.i;
      while (nb < raw.size() && isIdentChar(raw[nb])) ++nb;
      const std::string name = raw.substr(c.i, nb - c.i);
      c.advanceBy(nb - c.i);
      const std::string body = skipDirectiveBody(&c, &out);
      atLineStart = true;
      if (deadDepth > 0) {
        if (name == "if" || name == "ifdef" || name == "ifndef") {
          ++deadNesting;
        } else if (name == "endif") {
          if (deadNesting == 0) {
            deadDepth = 0;
          } else {
            --deadNesting;
          }
        } else if ((name == "else" || name == "elif") && deadNesting == 0) {
          deadDepth = 0;  // the other branch of `#if 0` is live
        }
        continue;
      }
      if (name == "if" && trimmed(body) == "0") {
        deadDepth = 1;
        deadNesting = 0;
        continue;
      }
      if (name == "include") {
        const std::string b = trimmed(body);
        if (b.size() >= 2 && (b.front() == '"' || b.front() == '<')) {
          const char close = b.front() == '"' ? '"' : '>';
          const std::size_t end = b.find(close, 1);
          if (end != std::string::npos) {
            out.includes.push_back(IncludeDirective{
                dirLine, b.substr(1, end - 1), b.front() == '<'});
          }
        }
      }
      continue;
    }
    if (deadDepth > 0) {
      // Inside `#if 0`: consume without tokenizing (literals still skipped
      // so a quote cannot swallow the closing #endif).
      if (ch == '"' || ch == '\'') {
        skipLiteral(&c);
      } else {
        c.advance();
      }
      atLineStart = false;
      continue;
    }
    atLineStart = false;
    if (isIdentStart(ch)) {
      if (ch == 'R' && c.peek() == '"') {
        const std::uint32_t line = c.line;
        const std::uint32_t off = static_cast<std::uint32_t>(c.i);
        skipLiteral(&c);
        out.tokens.push_back(Token{Tok::Str, std::string_view(), line, off});
        continue;
      }
      const std::size_t begin = c.i;
      const std::uint32_t line = c.line;
      while (!c.done() && isIdentChar(c.cur())) c.advance();
      out.tokens.push_back(
          Token{Tok::Ident,
                std::string_view(raw).substr(begin, c.i - begin), line,
                static_cast<std::uint32_t>(begin)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek())))) {
      const std::size_t begin = c.i;
      const std::uint32_t line = c.line;
      while (!c.done() &&
             (isIdentChar(c.cur()) || c.cur() == '.' || c.cur() == '\'' ||
              ((c.cur() == '+' || c.cur() == '-') &&
               (c.at(c.i - 1) == 'e' || c.at(c.i - 1) == 'E' ||
                c.at(c.i - 1) == 'p' || c.at(c.i - 1) == 'P')))) {
        c.advance();
      }
      out.tokens.push_back(
          Token{Tok::Number,
                std::string_view(raw).substr(begin, c.i - begin), line,
                static_cast<std::uint32_t>(begin)});
      continue;
    }
    if (ch == '"') {
      const std::uint32_t line = c.line;
      const std::uint32_t off = static_cast<std::uint32_t>(c.i);
      skipLiteral(&c);
      out.tokens.push_back(Token{Tok::Str, std::string_view(), line, off});
      continue;
    }
    if (ch == '\'') {
      const std::uint32_t line = c.line;
      const std::uint32_t off = static_cast<std::uint32_t>(c.i);
      skipLiteral(&c);
      out.tokens.push_back(Token{Tok::Chr, std::string_view(), line, off});
      continue;
    }
    // Punctuator, longest match first.
    const std::string_view rest = std::string_view(raw).substr(c.i);
    std::size_t len = 1;
    for (const char* p : kPunct3) {
      if (rest.starts_with(p)) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const char* p : kPunct2) {
        if (rest.starts_with(p)) {
          len = 2;
          break;
        }
      }
    }
    const std::uint32_t line = c.line;
    const std::uint32_t off = static_cast<std::uint32_t>(c.i);
    out.tokens.push_back(Token{Tok::Punct, rest.substr(0, len), line, off});
    c.advanceBy(len);
  }
  return out;
}

}  // namespace dimatool
