#include "tools/dimacheck/model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dimatool {

namespace {

/// Keywords that can precede '(' without being a call or a definition.
const std::set<std::string>& nonCallKeywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",        "while",    "switch",   "return",
      "sizeof",   "alignof",    "alignas",  "catch",    "case",
      "goto",     "static_assert",          "decltype", "noexcept",
      "requires", "co_await",   "co_return", "co_yield", "defined",
      "throw",    "delete",     "new",      "typeid",   "asm",
      "int",      "char",       "bool",     "void",     "auto",
      "unsigned", "signed",     "short",    "long",     "float",
      "double",   "wchar_t",    "char8_t",  "char16_t", "char32_t"};
  return kSet;
}

bool isPunct(const Token& t, const char* s) {
  return t.kind == Tok::Punct && t.text == s;
}

/// Heuristic symbol-table builder for one file's token stream.
struct Extractor {
  const std::vector<Token>& t;
  int fileIndex;
  Project* out;

  std::size_t matchForward(std::size_t open, const char* openSym,
                           const char* closeSym) const {
    // Returns the index of the matching closer, or t.size() on imbalance.
    int depth = 0;
    for (std::size_t k = open; k < t.size(); ++k) {
      if (isPunct(t[k], openSym)) {
        ++depth;
      } else if (isPunct(t[k], closeSym)) {
        if (--depth == 0) return k;
      }
    }
    return t.size();
  }
  std::size_t matchParen(std::size_t open) const {
    return matchForward(open, "(", ")");
  }
  std::size_t matchBrace(std::size_t open) const {
    return matchForward(open, "{", "}");
  }

  /// Skips a balanced template argument list starting at '<'. Angle
  /// brackets are not real brackets, so this is only called where a type
  /// is grammatically required (after `template`, casts, class heads).
  std::size_t skipAngles(std::size_t open) const {
    int depth = 0;
    for (std::size_t k = open; k < t.size(); ++k) {
      if (isPunct(t[k], "<")) {
        ++depth;
      } else if (isPunct(t[k], ">")) {
        if (--depth == 0) return k + 1;
      } else if (isPunct(t[k], ">>")) {
        depth -= 2;
        if (depth <= 0) return k + 1;
      } else if (isPunct(t[k], ";") || isPunct(t[k], "{")) {
        return k;  // malformed; stop before swallowing a scope
      }
    }
    return t.size();
  }

  std::size_t skipToSemicolon(std::size_t from) const {
    int brace = 0;
    int paren = 0;
    for (std::size_t k = from; k < t.size(); ++k) {
      if (isPunct(t[k], "{")) ++brace;
      if (isPunct(t[k], "}")) {
        if (brace == 0) return k;  // scope closed before ';' — bail
        --brace;
      }
      if (isPunct(t[k], "(")) ++paren;
      if (isPunct(t[k], ")") && paren > 0) --paren;
      if (isPunct(t[k], ";") && brace == 0 && paren == 0) return k + 1;
    }
    return t.size();
  }

  void run() { parseDeclarations(0, t.size(), {}); }

  /// Walks a declaration scope (file, namespace, or class body) in
  /// [begin, end), recording function definitions.
  void parseDeclarations(std::size_t begin, std::size_t end,
                         std::vector<std::string> classes) {
    std::size_t i = begin;
    while (i < end) {
      const Token& tok = t[i];
      if (tok.kind != Tok::Ident) {
        if (isPunct(tok, "{")) {
          // Braced initializer or stray block at declaration scope.
          const std::size_t close = matchBrace(i);
          i = close >= end ? end : close + 1;
          continue;
        }
        if (isPunct(tok, "~") && i + 1 < end && t[i + 1].kind == Tok::Ident &&
            i + 2 < end && isPunct(t[i + 2], "(")) {
          // Destructor definition.
          tryFunction(i + 1, end, classes, /*dtor=*/true);
          i = lastStop;
          continue;
        }
        ++i;
        continue;
      }
      const std::string_view s = tok.text;
      if (s == "namespace") {
        std::size_t j = i + 1;
        while (j < end &&
               (t[j].kind == Tok::Ident || isPunct(t[j], "::"))) {
          ++j;
        }
        if (j < end && isPunct(t[j], "{")) {
          const std::size_t close = matchBrace(j);
          parseDeclarations(j + 1, std::min(close, end), classes);
          i = close >= end ? end : close + 1;
        } else {
          i = skipToSemicolon(i);
        }
        continue;
      }
      if (s == "class" || s == "struct" || s == "union") {
        std::size_t j = i + 1;
        std::string cname;
        while (j < end) {
          if (t[j].kind == Tok::Ident) {
            if (t[j].text == "final" || t[j].text == "alignas") {
              ++j;
              continue;
            }
            cname = std::string(t[j].text);
            ++j;
            continue;
          }
          if (isPunct(t[j], "<")) {
            j = skipAngles(j);
            continue;
          }
          break;
        }
        // Base clause: skip to '{' or ';' or '(' (the last means this was
        // really a declaration like `struct S s(1);`).
        while (j < end && !isPunct(t[j], "{") && !isPunct(t[j], ";") &&
               !isPunct(t[j], "(")) {
          if (isPunct(t[j], "<")) {
            j = skipAngles(j);
            continue;
          }
          ++j;
        }
        if (j < end && isPunct(t[j], "{")) {
          const std::size_t close = matchBrace(j);
          std::vector<std::string> inner = classes;
          if (!cname.empty()) inner.push_back(cname);
          parseDeclarations(j + 1, std::min(close, end), std::move(inner));
          i = close >= end ? end : close + 1;
        } else {
          i = skipToSemicolon(i);
        }
        continue;
      }
      if (s == "enum") {
        std::size_t j = i + 1;
        while (j < end && !isPunct(t[j], "{") && !isPunct(t[j], ";")) ++j;
        if (j < end && isPunct(t[j], "{")) {
          const std::size_t close = matchBrace(j);
          i = close >= end ? end : close + 1;
        } else {
          i = j >= end ? end : j + 1;
        }
        continue;
      }
      if (s == "template") {
        if (i + 1 < end && isPunct(t[i + 1], "<")) {
          i = skipAngles(i + 1);
        } else {
          ++i;
        }
        continue;
      }
      if (s == "using" || s == "typedef" || s == "static_assert" ||
          s == "friend") {
        i = skipToSemicolon(i);
        continue;
      }
      if (s == "operator") {
        // Operator definitions: name = "operator" + symbol(s). The params
        // '(' is the first '(' after the symbol — except operator() where
        // the symbol itself is "()".
        std::size_t j = i + 1;
        std::string name = "operator";
        if (j + 1 < end && isPunct(t[j], "(") && isPunct(t[j + 1], ")")) {
          name += "()";
          j += 2;
        } else {
          while (j < end && t[j].kind == Tok::Punct && !isPunct(t[j], "(")) {
            name += t[j].text;
            ++j;
          }
          while (j < end && t[j].kind == Tok::Ident) ++j;  // operator T
        }
        if (j < end && isPunct(t[j], "(")) {
          tryFunctionNamed(name, i, j, end, classes);
          i = lastStop;
        } else {
          i = skipToSemicolon(i);
        }
        continue;
      }
      // Function-definition candidate: identifier directly followed by '('.
      if (i + 1 < end && isPunct(t[i + 1], "(") &&
          nonCallKeywords().count(std::string(s)) == 0) {
        tryFunction(i, end, classes, /*dtor=*/false);
        i = lastStop;
        continue;
      }
      ++i;
    }
  }

  std::size_t lastStop = 0;  ///< where the caller should resume

  void tryFunction(std::size_t nameTok, std::size_t end,
                   const std::vector<std::string>& classes, bool dtor) {
    std::string name = (dtor ? "~" : "") + std::string(t[nameTok].text);
    tryFunctionNamed(name, nameTok, nameTok + 1, end, classes);
  }

  /// Shared tail: `paren` is the index of the '(' opening the parameter
  /// list. Sets `lastStop` to the resume point whether or not a definition
  /// was recognized.
  void tryFunctionNamed(const std::string& name, std::size_t nameTok,
                        std::size_t paren, std::size_t end,
                        const std::vector<std::string>& classes) {
    lastStop = nameTok + 1;
    // Qualified name written at the definition: Scope::name.
    std::string qual = name;
    {
      std::size_t k = nameTok;
      while (k >= 2 && isPunct(t[k - 1], "::") && t[k - 2].kind == Tok::Ident) {
        qual = std::string(t[k - 2].text) + "::" + qual;
        k -= 2;
      }
      if (qual == name && !classes.empty()) {
        qual = classes.back() + "::" + name;
      }
    }
    const std::size_t parenClose = matchParen(paren);
    if (parenClose >= end) return;
    std::size_t j = parenClose + 1;
    // Trailing specifiers, annotation macros, trailing return type.
    while (j < end) {
      const Token& tj = t[j];
      if (tj.kind == Tok::Ident) {
        const std::string_view w = tj.text;
        if (w == "const" || w == "noexcept" || w == "override" ||
            w == "final" || w == "mutable" || w == "volatile" ||
            w == "throw" || w == "requires" || w.starts_with("DIMA_")) {
          if (j + 1 < end && isPunct(t[j + 1], "(")) {
            j = matchParen(j + 1) + 1;
          } else {
            ++j;
          }
          continue;
        }
        break;
      }
      if (isPunct(tj, "&") || isPunct(tj, "&&")) {
        ++j;
        continue;
      }
      if (isPunct(tj, "->")) {
        // Trailing return type: scan to the body/terminator.
        ++j;
        while (j < end && !isPunct(t[j], "{") && !isPunct(t[j], ";") &&
               !isPunct(t[j], "=")) {
          if (isPunct(t[j], "<")) {
            j = skipAngles(j);
            continue;
          }
          ++j;
        }
        break;
      }
      break;
    }
    if (j < end && isPunct(t[j], ":") && !isPunct(t[j], "::")) {
      // Constructor initializer list: Ident(args) or Ident{args}, comma
      // separated, then the body brace.
      ++j;
      while (j < end) {
        while (j < end && (t[j].kind == Tok::Ident || isPunct(t[j], "::") ||
                           isPunct(t[j], "~"))) {
          ++j;
        }
        if (j < end && isPunct(t[j], "<")) j = skipAngles(j);
        if (j < end && isPunct(t[j], "(")) {
          j = matchParen(j) + 1;
        } else if (j < end && isPunct(t[j], "{")) {
          j = matchBrace(j) + 1;
        } else {
          break;
        }
        if (j < end && isPunct(t[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (j >= end || !isPunct(t[j], "{")) return;
    const std::size_t close = matchBrace(j);
    if (close >= t.size()) return;

    FunctionDef def;
    def.name = name;
    def.qual = qual;
    def.file = fileIndex;
    def.line = t[nameTok].line;
    def.paramsBegin = static_cast<std::uint32_t>(paren);
    def.paramsEnd = static_cast<std::uint32_t>(parenClose);
    def.bodyBegin = static_cast<std::uint32_t>(j);
    def.bodyEnd = static_cast<std::uint32_t>(close);
    const int defIndex = static_cast<int>(out->defs.size());
    out->defs.push_back(def);
    out->calls.push_back(collectCalls(j + 1, close));
    out->fileDefs[static_cast<std::size_t>(fileIndex)].push_back(defIndex);
    lastStop = close + 1;
  }

  /// Flat scan of a body for call sites. Lambda bodies inside count toward
  /// the enclosing function — right for reachability, since the enclosing
  /// function creates and dispatches them.
  std::vector<CallSite> collectCalls(std::size_t begin,
                                     std::size_t end) const {
    std::vector<CallSite> sites;
    for (std::size_t k = begin; k < end && k + 1 < t.size(); ++k) {
      if (t[k].kind != Tok::Ident || !isPunct(t[k + 1], "(")) continue;
      const std::string name(t[k].text);
      if (nonCallKeywords().count(name) != 0) continue;
      CallSite cs;
      cs.name = name;
      cs.qual = name;
      cs.tok = static_cast<std::uint32_t>(k);
      cs.line = t[k].line;
      if (k > begin) {
        const Token& prev = t[k - 1];
        if (isPunct(prev, ".") || isPunct(prev, "->")) {
          cs.method = true;
        } else if (isPunct(prev, "::")) {
          // Walk the qualification chain leftward. A keyword before the
          // `::` (e.g. `return ::poll(...)`) is not a qualifier — the
          // chain ends and the call is globally qualified.
          std::size_t q = k - 1;
          std::string prefix;
          while (q > begin && isPunct(t[q], "::") && q >= 1 &&
                 t[q - 1].kind == Tok::Ident &&
                 nonCallKeywords().count(std::string(t[q - 1].text)) == 0) {
            prefix = std::string(t[q - 1].text) + "::" + prefix;
            if (q < 2) {
              q = 0;
              break;
            }
            q -= 2;
          }
          if (prefix.empty()) {
            cs.global = true;  // spelled ::name(...)
            cs.qual = "::" + name;
          } else {
            cs.qual = prefix + name;
          }
        }
      }
      sites.push_back(std::move(cs));
    }
    return sites;
  }
};

std::string dirOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string stemOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::size_t dot = path.rfind('.');
  const std::size_t from = slash == std::string::npos ? 0 : slash + 1;
  if (dot == std::string::npos || dot < from) return path.substr(from);
  return path.substr(from, dot - from);
}

}  // namespace

void buildProject(const Tree& tree, Project* p) {
  p->tree = &tree;
  const std::size_t n = tree.files.size();
  p->streams.clear();
  p->streams.reserve(n);
  p->defs.clear();
  p->calls.clear();
  p->byName.clear();
  p->fileDefs.assign(n, {});
  p->visible.assign(n, {});

  std::map<std::string, int> byPath;
  for (std::size_t f = 0; f < n; ++f) {
    byPath[tree.files[f].path] = static_cast<int>(f);
  }
  for (std::size_t f = 0; f < n; ++f) {
    p->streams.push_back(lexFile(tree.files[f].raw));
    Extractor ex{p->streams.back().tokens, static_cast<int>(f), p};
    ex.run();
  }
  for (std::size_t d = 0; d < p->defs.size(); ++d) {
    p->byName.emplace(p->defs[d].name, static_cast<int>(d));
    FunctionDef& def = p->defs[d];
    def.hotPath = p->noteNear(def.file, def.line, "dimacheck: hot-path");
    def.observerSlot =
        p->noteNear(def.file, def.line, "dimacheck: observer-slot");
  }

  // Include closure + the linker edge (a visible header implies its
  // sibling .cpp's definitions are linked in).
  std::vector<std::vector<int>> includeEdges(n);
  std::map<std::pair<std::string, std::string>, int> hppToCpp;
  for (std::size_t f = 0; f < n; ++f) {
    const std::string& path = tree.files[f].path;
    if (path.ends_with(".cpp")) {
      hppToCpp[{dirOf(path), stemOf(path)}] = static_cast<int>(f);
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    for (const IncludeDirective& inc : p->streams[f].includes) {
      const auto it = byPath.find(inc.path);
      if (it != byPath.end()) includeEdges[f].push_back(it->second);
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    std::set<int>& vis = p->visible[f];
    std::vector<int> work{static_cast<int>(f)};
    while (!work.empty()) {
      const int cur = work.back();
      work.pop_back();
      if (!vis.insert(cur).second) continue;
      for (const int nxt : includeEdges[static_cast<std::size_t>(cur)]) {
        if (vis.count(nxt) == 0) work.push_back(nxt);
      }
      const std::string& path = tree.files[static_cast<std::size_t>(cur)].path;
      if (path.ends_with(".hpp")) {
        const auto it = hppToCpp.find({dirOf(path), stemOf(path)});
        if (it != hppToCpp.end() && vis.count(it->second) == 0) {
          work.push_back(it->second);
        }
      }
    }
  }
}

std::vector<int> Project::resolve(int fromFile, const CallSite& cs) const {
  std::vector<int> sameFile;
  std::vector<int> others;
  const auto [lo, hi] = byName.equal_range(cs.name);
  const std::set<int>& vis = visible[static_cast<std::size_t>(fromFile)];
  for (auto it = lo; it != hi; ++it) {
    const FunctionDef& def = defs[static_cast<std::size_t>(it->second)];
    if (!cs.method && cs.qual != cs.name && cs.qual != "::" + cs.name) {
      // Qualified call: require the definition's scoped spelling to end
      // with the written qualification.
      const std::string& q = cs.qual;
      if (def.qual != q &&
          !(def.qual.size() > q.size() &&
            def.qual.compare(def.qual.size() - q.size(), q.size(), q) == 0 &&
            def.qual[def.qual.size() - q.size() - 1] == ':')) {
        continue;
      }
    }
    if (def.file == fromFile) {
      sameFile.push_back(it->second);
    } else if (vis.count(def.file) != 0) {
      others.push_back(it->second);
    }
  }
  if (!sameFile.empty()) return sameFile;
  return others;
}

bool Project::allowed(int file, std::uint32_t line,
                      const std::string& rule) const {
  const std::string needle = "dimacheck: allow(" + rule + ")";
  for (const CommentNote& note : streams[static_cast<std::size_t>(file)].notes) {
    if ((note.line == line || note.line + 1 == line) &&
        note.text.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool Project::noteNear(int file, std::uint32_t line,
                       const std::string& needle) const {
  for (const CommentNote& note : streams[static_cast<std::size_t>(file)].notes) {
    if (note.line <= line && note.line + 2 >= line &&
        note.text.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// compile_commands.json.

bool loadCompileDb(const std::string& path, std::vector<std::string>* files,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  files->clear();
  // The database is a flat JSON array of objects whose values are strings;
  // find every `"file"` key and take its string value (unescaping the two
  // escapes CMake emits in paths: \\ and \").
  std::size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':' ||
            text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        value.push_back(text[pos + 1]);
        pos += 2;
      } else {
        value.push_back(text[pos]);
        ++pos;
      }
    }
    files->push_back(std::move(value));
  }
  if (files->empty()) {
    *error = "no \"file\" entries in " + path +
             " (not a compile_commands.json?)";
    return false;
  }
  return true;
}

std::vector<std::string> staleDbEntries(
    const Tree& tree, const std::vector<std::string>& dbFiles) {
  // Database entries are absolute paths; compare by suffix match against
  // the tree's repo-relative TU paths.
  std::vector<std::string> missing;
  for (const SourceFile& f : tree.files) {
    if (!f.path.ends_with(".cpp")) continue;
    bool found = false;
    for (const std::string& db : dbFiles) {
      if (db == f.path ||
          (db.size() > f.path.size() &&
           db.compare(db.size() - f.path.size(), f.path.size(), f.path) ==
               0 &&
           db[db.size() - f.path.size() - 1] == '/')) {
        found = true;
        break;
      }
    }
    if (!found) missing.push_back(f.path);
  }
  return missing;
}

}  // namespace dimatool
