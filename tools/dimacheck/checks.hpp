#pragma once

/// \file checks.hpp
/// The four cross-TU semantic rules (see DESIGN.md §14):
///
///   wire-taint                 flow-sensitive taint from untrusted byte
///                              readers to size/index/multiply sinks
///   single-writer-flow         CommitHalves mutators only via EndpointHalf;
///                              observer-slot functions unreachable from
///                              per-node hooks
///   blocking-call-confinement  socket/poll syscall reachability confined
///                              to src/service/transport.cpp
///   hot-path-reachability      no allocation/throw/indirection reachable
///                              from forPlaneWords lambdas or functions
///                              tagged `// dimacheck: hot-path`
///
/// Suppression: `// dimacheck: allow(<rule>)` on the finding's line or the
/// line above — reserved for reviewed, documented exceptions.

#include <string>
#include <vector>

#include "tools/dimacheck/model.hpp"

namespace dimatool {

struct CheckFinding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::vector<std::string> trace;  ///< "file:line: step" taint/call chain
};

struct CheckRule {
  const char* id;
  const char* summary;
};

/// Rule table, in severity-of-surprise order. One fixture tree per id must
/// exist under tests/lint_fixtures/dimacheck/ (enforced by --self-check).
const std::vector<CheckRule>& checkRules();

std::vector<CheckFinding> runChecks(const Project& p);

}  // namespace dimatool
