/// \file replot.cpp
/// Re-renders a figure bench's raw CSV as the ASCII figure:
///   $ ./replot fig3_records.csv
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/experiments/replot.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: replot <figN_records.csv> [title]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "error: cannot read '" << argv[1] << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const dima::exp::ReplotResult result = dima::exp::replotFigureCsv(
      buffer.str(), argc > 2 ? argv[2] : argv[1]);
  if (!result.ok) {
    std::cerr << "error: " << result.error << '\n';
    return 1;
  }
  std::cout << result.plot << result.rows << " runs plotted\n";
  return 0;
}
