#!/usr/bin/env bash
# Local entry point for the static gate (DESIGN.md §11): exactly what CI's
# static-analysis job runs, so a green local run means a green CI wall.
#
#   tools/run_static_analysis.sh [build-dir]
#
# Stages:
#   1. configure+build with clang, -DDIMA_WERROR=ON  (thread-safety analysis
#      promoted to errors, negative compile cases verified at configure)
#   2. dimalint over the tree + its fixture self-check
#   3. dimacheck (the cross-TU semantic pass) over the tree — compile-db
#      freshness-gated and digest-cached — + its fixture self-check
#   4. run-clang-tidy over the exported compile_commands.json
#
# Requires clang/clang-tidy at the pinned major (or newer). On machines
# without clang the annotation macros expand to nothing and the thread-safety
# and tidy stages cannot run — fail loudly rather than green-wash.

set -euo pipefail

PIN_MAJOR=18  # keep in sync with DIMA_CLANG_PIN_MAJOR in CMakeLists.txt
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-static-analysis}"

find_tool() {
  # Prefer the pinned-major suffix, fall back to the bare name.
  local base="$1"
  for cand in "${base}-${PIN_MAJOR}" "${base}"; do
    if command -v "${cand}" >/dev/null 2>&1; then
      echo "${cand}"
      return 0
    fi
  done
  return 1
}

require_major() {
  local tool="$1" name="$2"
  local version major
  version="$("${tool}" --version | grep -oE '[0-9]+\.[0-9]+\.[0-9]+' | head -1)"
  major="${version%%.*}"
  if [ "${major}" -lt "${PIN_MAJOR}" ]; then
    echo "error: ${name} ${version} is older than the pinned major" \
         "${PIN_MAJOR}." >&2
    echo "The static gate is calibrated against clang ${PIN_MAJOR}: older" \
         "releases miss thread-safety diagnostics and tidy checks the tree" \
         "relies on, so a green run would not mean what it claims." >&2
    echo "Install clang-${PIN_MAJOR}/clang-tidy-${PIN_MAJOR} (e.g. from" \
         "apt.llvm.org) or run in the CI container." >&2
    exit 2
  fi
}

CLANGXX="$(find_tool clang++)" || {
  echo "error: clang++ not found — the static gate needs clang's" \
       "-Wthread-safety analysis (gcc expands the annotations to nothing)." >&2
  exit 2
}
CLANG_TIDY="$(find_tool clang-tidy)" || {
  echo "error: clang-tidy not found (want major ${PIN_MAJOR}+)." >&2
  exit 2
}
require_major "${CLANGXX}" clang++
require_major "${CLANG_TIDY}" clang-tidy

echo "== stage 1/4: clang build, -Werror=thread-safety, negative compiles =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_CXX_COMPILER="${CLANGXX}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDIMA_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== stage 2/4: dimalint =="
"${BUILD_DIR}/tools/dimalint" --root "${REPO_ROOT}"
"${BUILD_DIR}/tools/dimalint" --self-check "${REPO_ROOT}/tests/lint_fixtures"

echo "== stage 3/4: dimacheck =="
# The tree run freshness-checks the compile db first: a TU added since the
# last configure fails loudly with a regenerate hint instead of being
# silently unanalyzed. The --cache digest lets repeat runs (and CI) skip
# the db parse when neither the db nor the TU list moved.
"${BUILD_DIR}/tools/dimacheck" --root "${REPO_ROOT}" \
  --compile-db "${BUILD_DIR}/compile_commands.json" \
  --cache "${BUILD_DIR}/dimacheck-dbcache"
"${BUILD_DIR}/tools/dimacheck" --self-check \
  "${REPO_ROOT}/tests/lint_fixtures/dimacheck"

echo "== stage 4/4: clang-tidy =="
RUN_CLANG_TIDY="$(find_tool run-clang-tidy)" || {
  echo "error: run-clang-tidy not found (ships with clang-tidy)." >&2
  exit 2
}
"${RUN_CLANG_TIDY}" -clang-tidy-binary "${CLANG_TIDY}" \
  -p "${BUILD_DIR}" -quiet "${REPO_ROOT}/src/.*\.cpp$"

echo "static gate: all four stages green"
