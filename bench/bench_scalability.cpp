/// \file bench_scalability.cpp
/// SCALE (beyond the paper): the paper demonstrates n-independence only at
/// n ∈ {200, 400}. This bench pushes the claim an order of magnitude
/// further — n from 100 to 3200 at fixed average degree — and reports the
/// three scalings that make the algorithms deployable:
///   * computation rounds vs n: must stay flat (rounds track Δ, and Δ of
///     an ER graph at fixed average degree grows only ~log n / log log n);
///   * per-node traffic vs n: must stay flat (constant work per node);
///   * largest message vs n: must grow logarithmically (CONGEST).
/// The google-benchmark section times the simulator itself so its O(n·Δ)
/// cost per round is visible too.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {

using namespace dima;

void BM_MadecAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(3);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, 8.0, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(
        coloring::colorEdgesMadec(g, options).colors.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MadecAtScale)
    ->RangeMultiplier(2)
    ->Range(100, 3200)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void runScalingTable() {
  std::printf("\n== SCALE: MaDEC vs network size at fixed average degree 8 "
              "(10 runs each) ==\n\n");
  support::TextTable table({"n", "mean-D", "mean rounds", "rounds/D",
                            "broadcasts/node/round", "max msg bits",
                            "invalid"});
  for (std::size_t n : {100u, 200u, 400u, 800u, 1600u, 3200u}) {
    support::OnlineStats delta, rounds, roundsPerDelta, perNode;
    std::uint64_t maxBits = 0;
    std::size_t invalid = 0;
    for (std::uint64_t run = 0; run < 10; ++run) {
      support::Rng rng(support::mix64(0x5ca1e, run) + n);
      const graph::Graph g = graph::erdosRenyiAvgDegree(n, 8.0, rng);
      coloring::MadecOptions options;
      options.seed = run;
      const auto result = coloring::colorEdgesMadec(g, options);
      if (!coloring::verifyEdgeColoring(g, result.colors)) ++invalid;
      delta.add(static_cast<double>(g.maxDegree()));
      rounds.add(static_cast<double>(result.metrics.computationRounds));
      roundsPerDelta.add(
          static_cast<double>(result.metrics.computationRounds) /
          static_cast<double>(g.maxDegree()));
      perNode.add(static_cast<double>(result.metrics.broadcasts) /
                  static_cast<double>(g.numVertices()) /
                  static_cast<double>(result.metrics.computationRounds));
      maxBits = std::max(maxBits, result.metrics.maxMessageBits);
    }
    table.addRowOf(n, support::TextTable::format(delta.mean()),
                   support::TextTable::format(rounds.mean()),
                   support::TextTable::format(roundsPerDelta.mean()),
                   support::TextTable::format(perNode.mean()), maxBits,
                   invalid);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: rounds track D (which creeps up only logarithmically with "
      "n),\nper-node traffic stays constant, and the largest message grows "
      "by a\ncouple of bits per doubling — the paper's n-independence claim "
      "extends\nan order of magnitude past its own evaluation.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runScalingTable();
  return 0;
}
