/// \file bench_substrate.cpp
/// SUB (DESIGN.md §4): microbenchmarks of the substrates every experiment
/// stands on — graph generation throughput, the synchronous network's
/// per-round overhead, palette (bitset) operations, and the matching
/// automaton itself. These establish that the figure benches measure the
/// algorithms, not simulator overhead.

#include <benchmark/benchmark.h>

#include "src/automata/discovery.hpp"
#include "src/graph/generators.hpp"
#include "src/net/engine.hpp"
#include "src/net/network.hpp"
#include "src/support/bitset.hpp"

namespace {

using namespace dima;

void BM_GenerateErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    support::Rng rng(seed++);
    benchmark::DoNotOptimize(
        graph::erdosRenyiAvgDegree(n, 8.0, rng).numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_GenerateErdosRenyi)->Arg(200)->Arg(400)->Arg(1600);

void BM_GenerateWattsStrogatz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    support::Rng rng(seed++);
    benchmark::DoNotOptimize(
        graph::wattsStrogatz(n, 8, 0.25, rng).numEdges());
  }
}
BENCHMARK(BM_GenerateWattsStrogatz)->Arg(256)->Arg(1024);

void BM_NetworkBroadcastRound(benchmark::State& state) {
  // Every node broadcasts every round: the worst-case traffic the coloring
  // protocols generate. Reports per-round wall time.
  support::Rng rng(5);
  const graph::Graph g = graph::erdosRenyiAvgDegree(
      static_cast<std::size_t>(state.range(0)), 8.0, rng);
  struct Word {
    std::uint64_t w = 0;
  };
  net::SyncNetwork<Word> netSim(g);
  std::uint64_t round = 0;
  for (auto _ : state) {
    for (net::NodeId v = 0; v < g.numVertices(); ++v) {
      netSim.broadcast(v, Word{round});
    }
    netSim.deliverRound();
    benchmark::DoNotOptimize(netSim.inbox(0).data());
    ++round;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(netSim.counters().messagesDelivered));
}
BENCHMARK(BM_NetworkBroadcastRound)->Arg(200)->Arg(400)->Arg(1600);

void BM_BitsetFirstClearAlsoClearIn(benchmark::State& state) {
  // The color-selection primitive of Algorithm 1 line 11.
  support::DynamicBitset a, b;
  support::Rng rng(9);
  for (int i = 0; i < 256; ++i) {
    if (rng.coin()) a.set(static_cast<std::size_t>(i));
    if (rng.coin()) b.set(static_cast<std::size_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.firstClearAlsoClearIn(b));
  }
}
BENCHMARK(BM_BitsetFirstClearAlsoClearIn);

void BM_MaximalMatching(benchmark::State& state) {
  support::Rng rng(11);
  const graph::Graph g = graph::erdosRenyiAvgDegree(
      static_cast<std::size_t>(state.range(0)), 8.0, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        automata::maximalMatching(g, seed++).matching.size());
  }
}
BENCHMARK(BM_MaximalMatching)->Arg(200)->Arg(400)->Unit(
    benchmark::kMillisecond);

void BM_RngStreamDraws(benchmark::State& state) {
  support::Rng rng(13);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += rng.below(1000);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngStreamDraws);

}  // namespace

BENCHMARK_MAIN();
