/// \file bench_substrate.cpp
/// SUB (DESIGN.md §4): microbenchmarks of the substrates every experiment
/// stands on — graph generation throughput, the message substrate's
/// per-round cost, palette (bitset) operations, and the matching automaton
/// itself. These establish that the figure benches measure the algorithms,
/// not simulator overhead.
///
/// The substrate section compares the slot-arena `SyncNetwork` against the
/// pre-arena staging substrate (`LegacyNetwork` below, kept verbatim as the
/// baseline): every node broadcasts every round at n=10⁵, average degree 16,
/// with 1 and 8 workers. The legacy design pays a single-threaded
/// `deliverRound()` scan over all staging buffers between the parallel
/// phases; the arena delivers at send time and its `deliverRound()` is an
/// epoch bump. A second pair measures the engine tail: cycles where 90% of
/// nodes are already done, where the frontier engine does O(active) work
/// while the legacy loop re-ran hooks and a done-scan over every node.
///
/// A third section sweeps the sharded engine: full MaDEC runs at shard
/// counts K ∈ {1, 2, 4, 8} on the same n=10⁵ graph, each row tagged with
/// its partition's boundary-arc fraction (the cross-shard delivery tax).
///
/// Besides the console table, the binary writes `BENCH_substrate.json`
/// (ns/round, ops/s, threads, and the arena-vs-legacy plus shard-sweep
/// speedups) so the perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/automata/bitplane.hpp"
#include "src/automata/discovery.hpp"
#include "src/coloring/bitplane_engines.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/net/engine.hpp"
#include "src/net/network.hpp"
#include "src/support/bitset.hpp"
#include "src/support/small_vector.hpp"
#include "src/support/thread_pool.hpp"

// Provenance (DESIGN.md §4): a benchmark JSON without the commit, compiler,
// and dispatched ISA path cannot be compared across PRs or machines.
#ifndef DIMA_GIT_COMMIT
#define DIMA_GIT_COMMIT "unknown"
#endif

namespace {

using namespace dima;
namespace bp = dima::automata::bitplane;

#if defined(__clang__)
constexpr const char* kCompiler = "clang " __VERSION__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

constexpr std::size_t kSubstrateNodes = 100000;
constexpr double kSubstrateAvgDeg = 16.0;
constexpr std::size_t kSubstrateThreads = 8;

/// The pre-arena staging substrate, preserved as the comparison baseline:
/// sends go into per-sender staging buffers and a *serial* `deliverRound()`
/// moves every staged transmission into per-receiver inbox vectors. Only the
/// surface the benchmarks touch is kept (broadcast / deliverRound / inbox).
template <class M>
class LegacyNetwork {
 public:
  explicit LegacyNetwork(const graph::Graph& g)
      : g_(&g), staged_(g.numVertices()), inbox_(g.numVertices()) {}

  void broadcast(net::NodeId from, const M& m) {
    Staged& out = staged_[from];
    out.broadcastSet = true;
    out.broadcastPayload = m;
  }

  void deliverRound() {
    const std::size_t n = g_->numVertices();
    for (net::NodeId v = 0; v < n; ++v) inbox_[v].clear();
    for (net::NodeId from = 0; from < n; ++from) {
      Staged& out = staged_[from];
      if (!out.broadcastSet) continue;
      ++broadcasts_;
      for (const graph::Incidence& inc : g_->incidences(from)) {
        inbox_[inc.neighbor].push_back(
            net::Envelope<M>{from, out.broadcastPayload});
        ++delivered_;
      }
      out.broadcastSet = false;
    }
  }

  const net::Envelope<M>* inboxData(net::NodeId v) const {
    return inbox_[v].data();
  }
  std::span<const net::Envelope<M>> inbox(net::NodeId v) const {
    return {inbox_[v].data(), inbox_[v].size()};
  }
  std::uint64_t delivered() const { return delivered_; }

 private:
  struct Staged {
    bool broadcastSet = false;
    M broadcastPayload{};
  };
  const graph::Graph* g_;
  std::vector<Staged> staged_;
  std::vector<support::SmallVector<net::Envelope<M>, 8>> inbox_;
  std::uint64_t broadcasts_ = 0;
  std::uint64_t delivered_ = 0;
};

struct Word {
  std::uint64_t w = 0;
};

graph::Graph substrateGraph() {
  support::Rng rng(5);
  return graph::erdosRenyiAvgDegree(kSubstrateNodes, kSubstrateAvgDeg, rng);
}

/// One iteration = one full broadcast round (send phase on `threads`
/// workers, then delivery) on the slot arena.
void BM_SubstrateArenaRound(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto threads = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(threads);
  net::SyncNetwork<Word> netSim(g);
  std::uint64_t round = 0;
  for (auto _ : state) {
    pool.forEach(g.numVertices(), [&](std::size_t v) {
      netSim.broadcast(static_cast<net::NodeId>(v), Word{round});
    });
    netSim.deliverRound();
    benchmark::DoNotOptimize(netSim.inbox(0).empty());
    ++round;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(netSim.counters().messagesDelivered));
}
BENCHMARK(BM_SubstrateArenaRound)
    ->Arg(1)
    ->Arg(static_cast<int>(kSubstrateThreads))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Same round on the legacy staging substrate: the send phase parallelizes
/// identically, but every payload then funnels through the serial
/// `deliverRound()` scan.
void BM_SubstrateLegacyRound(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto threads = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(threads);
  LegacyNetwork<Word> netSim(g);
  std::uint64_t round = 0;
  for (auto _ : state) {
    pool.forEach(g.numVertices(), [&](std::size_t v) {
      netSim.broadcast(static_cast<net::NodeId>(v), Word{round});
    });
    netSim.deliverRound();
    benchmark::DoNotOptimize(netSim.inboxData(0));
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(netSim.delivered()));
}
BENCHMARK(BM_SubstrateLegacyRound)
    ->Arg(1)
    ->Arg(static_cast<int>(kSubstrateThreads))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// A *sparse* round — only every `stride`-th node broadcasts — the shape of
/// the late rounds that dominate an O(Δ)-cycle protocol run once most nodes
/// are done (stride 10 ≈ the last-10% regime, stride 100 ≈ the final
/// stragglers). The arena's cost scales with actual traffic (plus an O(1)
/// epoch bump); the legacy substrate still pays its O(n) staging scan and
/// O(n) inbox clears no matter how little was sent.
void BM_SubstrateArenaSparseRound(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto stride = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  support::ThreadPool pool(threads);
  net::SyncNetwork<Word> netSim(g);
  std::uint64_t round = 0;
  for (auto _ : state) {
    pool.forEach(g.numVertices() / stride, [&](std::size_t i) {
      netSim.broadcast(static_cast<net::NodeId>(i * stride), Word{round});
    });
    netSim.deliverRound();
    benchmark::DoNotOptimize(netSim.inbox(0).empty());
    ++round;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(netSim.counters().messagesDelivered));
}
BENCHMARK(BM_SubstrateArenaSparseRound)
    ->Args({10, 1})
    ->Args({10, static_cast<int>(kSubstrateThreads)})
    ->Args({100, 1})
    ->Args({100, static_cast<int>(kSubstrateThreads)})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SubstrateLegacySparseRound(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto stride = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  support::ThreadPool pool(threads);
  LegacyNetwork<Word> netSim(g);
  std::uint64_t round = 0;
  for (auto _ : state) {
    pool.forEach(g.numVertices() / stride, [&](std::size_t i) {
      netSim.broadcast(static_cast<net::NodeId>(i * stride), Word{round});
    });
    netSim.deliverRound();
    benchmark::DoNotOptimize(netSim.inboxData(0));
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(netSim.delivered()));
}
BENCHMARK(BM_SubstrateLegacySparseRound)
    ->Args({10, 1})
    ->Args({10, static_cast<int>(kSubstrateThreads)})
    ->Args({100, 1})
    ->Args({100, static_cast<int>(kSubstrateThreads)})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Straggler protocol for the engine-tail benches: 90% of nodes are done
/// from the start, the rest (one node in ten) broadcast for `kTailCycles`
/// cycles and fold their inboxes — the last-10%-of-nodes regime every
/// O(Δ)-cycle run ends in. The frontier engine touches only the stragglers;
/// the pre-frontier loop re-ran every hook over all n nodes plus a serial
/// done-scan per cycle.
struct TailProtocol {
  using Message = Word;
  static constexpr int kTailCycles = 10;

  explicit TailProtocol(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    remaining.assign(n, 0);
    heard.assign(n, 0);
    for (std::size_t u = 0; u + 1 < n; u += 10) {
      remaining[u + 1] = kTailCycles;
    }
  }

  int subRounds() const { return 1; }
  void beginCycle(net::NodeId) {}
  template <class Net>
  void send(net::NodeId u, int, Net& net) {
    if (remaining[u] > 0) net.broadcast(u, Word{remaining[u]});
  }
  // Templated so the same protocol runs on both substrates (the arena's
  // InboxView and the legacy span-of-envelopes inbox).
  template <class InboxT>
  void receive(net::NodeId u, int, InboxT inbox) {
    for (const auto& env : inbox) heard[u] += env.msg.w;
  }
  void endCycle(net::NodeId u) {
    if (remaining[u] > 0) --remaining[u];
  }
  bool done(net::NodeId u) const { return remaining[u] == 0; }

  std::vector<std::uint64_t> remaining;
  std::vector<std::uint64_t> heard;
};

/// One iteration = one full straggler run under the frontier engine.
void BM_EngineTailFrontier(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  support::ThreadPool pool(kSubstrateThreads);
  net::EngineOptions options;
  options.pool = &pool;
  net::SyncNetwork<Word> netSim(g);
  TailProtocol proto(g.numVertices());
  for (auto _ : state) {
    proto.reset(g.numVertices());
    benchmark::DoNotOptimize(
        net::runSyncProtocol(proto, netSim, options).cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          TailProtocol::kTailCycles);
}
BENCHMARK(BM_EngineTailFrontier)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The full pre-PR configuration, inlined: the legacy staging substrate with
/// its serial deliverRound underneath the pre-frontier engine loop, where
/// every hook runs over all n nodes every cycle and a serial done-scan
/// closes each cycle.
void BM_EngineTailFullScan(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  support::ThreadPool pool(kSubstrateThreads);
  const std::size_t n = g.numVertices();
  LegacyNetwork<Word> netSim(g);
  TailProtocol proto(n);
  for (auto _ : state) {
    proto.reset(n);
    auto countDone = [&] {
      std::size_t done = 0;
      for (net::NodeId u = 0; u < n; ++u) {
        if (proto.done(u)) ++done;
      }
      return done;
    };
    std::size_t nodesDone = countDone();
    std::uint64_t cycles = 0;
    while (nodesDone < n) {
      pool.forEach(n, [&](std::size_t u) {
        proto.beginCycle(static_cast<net::NodeId>(u));
      });
      pool.forEach(n, [&](std::size_t u) {
        proto.send(static_cast<net::NodeId>(u), 0, netSim);
      });
      netSim.deliverRound();
      pool.forEach(n, [&](std::size_t u) {
        const auto v = static_cast<net::NodeId>(u);
        proto.receive(v, 0, netSim.inbox(v));
      });
      pool.forEach(n, [&](std::size_t u) {
        proto.endCycle(static_cast<net::NodeId>(u));
      });
      ++cycles;
      nodesDone = countDone();
    }
    benchmark::DoNotOptimize(cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          TailProtocol::kTailCycles);
}
BENCHMARK(BM_EngineTailFullScan)->Unit(benchmark::kMillisecond)->UseRealTime();

/// One iteration = a full MaDEC run at n=10⁵, degree 16, through the
/// sharded engine at K shards (block partition, one worker per shard; K=1
/// is the single-arena reference substrate and the speedup baseline). The
/// colors are bit-identical across K by construction (DESIGN.md §13), so
/// this times exactly the same work partitioned K ways; what it exposes is
/// the cross-shard tax — each row carries its partition's boundary-arc
/// fraction, the share of deliveries that cross a shard boundary and pay
/// the epoch-tagged record exchange instead of a direct slot write.
void BM_ShardedMadecRun(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto shardCount = static_cast<std::uint32_t>(state.range(0));
  coloring::MadecOptions options;
  options.shards.count = shardCount;
  state.counters["boundary_arc_fraction"] = graph::boundaryArcFraction(
      g, graph::makePartition(g, graph::PartitionKind::Block, shardCount));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coloring::colorEdgesMadec(g, options).colors.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numVertices()));
}
BENCHMARK(BM_ShardedMadecRun)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// One iteration = the *first* MaDEC cycle on the bit-plane engine — every
/// node active, the densest round of the run and the shape every
/// O(Δ)-cycle protocol starts in. One cycle is 3 comm rounds, so the
/// apples-to-apples comparison against `BM_SubstrateArenaRound` (one
/// broadcast round of envelope traffic, no protocol work) is
/// arena_ns / (cycle_ns / 3) — computed as `bitplane_speedup_*` in the
/// JSON artifact. The reset (RNG re-seeding, plane clears) is excluded
/// from the timed region; it is per-run setup, not round cost.
void BM_BitPlaneRound(benchmark::State& state) {
  const graph::Graph g = substrateGraph();
  const auto threads = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(threads);
  coloring::MadecOptions options;
  options.pool = threads == 1 ? nullptr : &pool;
  coloring::BitPlaneMadec engine(g, options);
  for (auto _ : state) {
    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
    engine.runCycle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numVertices()));
}
BENCHMARK(BM_BitPlaneRound)
    ->Arg(1)
    ->Arg(static_cast<int>(kSubstrateThreads))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The word-parallel palette primitive (lowest color clear in BOTH rows —
/// Algorithm 1 line 11) over every node's row pair, on the scalar kernels
/// (arg 1 == 0) and the best compiled ISA path (arg 1 == 1), at two row
/// widths: 2 words (128 colors — MaDEC's 2Δ bound at this config) and 16
/// words (1024 colors — the grown-palette regime of large-Δ DiMa2Ed). The
/// wide-row ratio is the `bitplane_palette_simd_speedup` JSON line; short
/// rows are tail-mask-dominated, so SIMD is not expected to win there. On
/// a toolchain with only scalar kernels both args time the same code and
/// the ratio pins at ~1.
void BM_BitPlanePalette(benchmark::State& state) {
  const auto strideWords = static_cast<std::size_t>(state.range(0));
  bp::PaletteRows own(kSubstrateNodes, strideWords);
  bp::PaletteRows neighbor(kSubstrateNodes, strideWords);
  // Near-exhaustion fill: all colors taken except one in the upper half of
  // the row, so the scan actually walks the words. (A sparse row exits at
  // word 0 and times only call overhead — the regime where the primitive's
  // cost matters to a run is the last free color, not the first.)
  support::Rng rng(17);
  const std::size_t bits = strideWords * bp::kWordBits;
  for (net::NodeId u = 0; u < kSubstrateNodes; ++u) {
    bp::Word* a = own.row(u);
    bp::Word* b = neighbor.row(u);
    for (std::size_t w = 0; w < strideWords; ++w) {
      a[w] = ~bp::Word{0};
      b[w] = ~bp::Word{0};
    }
    const std::size_t freeBit = bits / 2 + rng.index(bits / 2);
    a[freeBit / bp::kWordBits] &= ~(bp::Word{1} << (freeBit % bp::kWordBits));
    b[freeBit / bp::kWordBits] &= ~(bp::Word{1} << (freeBit % bp::kWordBits));
  }
  const bp::Isa original = bp::activeIsa();
  bp::setIsa(state.range(1) == 0 ? bp::Isa::Scalar : bp::bestIsa());
  std::size_t sink = 0;
  for (auto _ : state) {
    for (net::NodeId u = 0; u < kSubstrateNodes; ++u) {
      sink += bp::kernels().firstClearPair(own.row(u), neighbor.row(u),
                                           strideWords);
    }
    benchmark::DoNotOptimize(sink);
  }
  bp::setIsa(original);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSubstrateNodes));
}
BENCHMARK(BM_BitPlanePalette)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

void BM_GenerateErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    support::Rng rng(seed++);
    benchmark::DoNotOptimize(
        graph::erdosRenyiAvgDegree(n, 8.0, rng).numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_GenerateErdosRenyi)->Arg(200)->Arg(400)->Arg(1600);

void BM_BitsetFirstClearAlsoClearIn(benchmark::State& state) {
  // The color-selection primitive of Algorithm 1 line 11.
  support::DynamicBitset a, b;
  support::Rng rng(9);
  for (int i = 0; i < 256; ++i) {
    if (rng.coin()) a.set(static_cast<std::size_t>(i));
    if (rng.coin()) b.set(static_cast<std::size_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.firstClearAlsoClearIn(b));
  }
}
BENCHMARK(BM_BitsetFirstClearAlsoClearIn);

void BM_MaximalMatching(benchmark::State& state) {
  support::Rng rng(11);
  const graph::Graph g = graph::erdosRenyiAvgDegree(
      static_cast<std::size_t>(state.range(0)), 8.0, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        automata::maximalMatching(g, seed++).matching.size());
  }
}
BENCHMARK(BM_MaximalMatching)->Arg(200)->Arg(400)->Unit(
    benchmark::kMillisecond);

void BM_RngStreamDraws(benchmark::State& state) {
  support::Rng rng(13);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += rng.below(1000);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngStreamDraws);

/// Console reporter that additionally captures per-benchmark timings so
/// main() can compute the arena-vs-legacy speedups and write the JSON
/// artifact.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double nsPerIter = 0;
    double itemsPerSecond = 0;
    double boundaryArcFraction = -1;  // < 0: not a sharded row
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.iterations == 0) continue;
      Row row;
      row.name = run.benchmark_name();
      row.nsPerIter = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.itemsPerSecond = items->second;
      const auto boundary = run.counters.find("boundary_arc_fraction");
      if (boundary != run.counters.end()) {
        row.boundaryArcFraction = boundary->second;
      }
      rows.push_back(row);
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<Row> rows;
};

double nsFor(const std::vector<TeeReporter::Row>& rows,
             const std::string& name) {
  for (const auto& row : rows) {
    if (row.name == name) return row.nsPerIter;
  }
  return 0;
}

void writeJson(const std::vector<TeeReporter::Row>& rows) {
  std::FILE* out = std::fopen("BENCH_substrate.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_substrate.json\n");
    return;
  }
  const std::string threadSuffix =
      "/" + std::to_string(kSubstrateThreads) + "/real_time";
  const double arena1 =
      nsFor(rows, "BM_SubstrateArenaRound/1/real_time");
  const double arena8 = nsFor(rows, "BM_SubstrateArenaRound" + threadSuffix);
  const double legacy1 =
      nsFor(rows, "BM_SubstrateLegacyRound/1/real_time");
  const double legacy8 = nsFor(rows, "BM_SubstrateLegacyRound" + threadSuffix);
  const double sparseArena1 =
      nsFor(rows, "BM_SubstrateArenaSparseRound/10/1/real_time");
  const double sparseArena8 =
      nsFor(rows, "BM_SubstrateArenaSparseRound/10" + threadSuffix);
  const double sparseLegacy1 =
      nsFor(rows, "BM_SubstrateLegacySparseRound/10/1/real_time");
  const double sparseLegacy8 =
      nsFor(rows, "BM_SubstrateLegacySparseRound/10" + threadSuffix);
  const double tailRoundArena1 =
      nsFor(rows, "BM_SubstrateArenaSparseRound/100/1/real_time");
  const double tailRoundArena8 =
      nsFor(rows, "BM_SubstrateArenaSparseRound/100" + threadSuffix);
  const double tailRoundLegacy1 =
      nsFor(rows, "BM_SubstrateLegacySparseRound/100/1/real_time");
  const double tailRoundLegacy8 =
      nsFor(rows, "BM_SubstrateLegacySparseRound/100" + threadSuffix);
  const double tailFrontier = nsFor(rows, "BM_EngineTailFrontier/real_time");
  const double tailFull = nsFor(rows, "BM_EngineTailFullScan/real_time");
  const double shard1 = nsFor(rows, "BM_ShardedMadecRun/1/real_time");
  const double shard2 = nsFor(rows, "BM_ShardedMadecRun/2/real_time");
  const double shard4 = nsFor(rows, "BM_ShardedMadecRun/4/real_time");
  const double shard8 = nsFor(rows, "BM_ShardedMadecRun/8/real_time");
  const double bitplane1 = nsFor(rows, "BM_BitPlaneRound/1/real_time");
  const double bitplane8 = nsFor(rows, "BM_BitPlaneRound" + threadSuffix);
  const double paletteScalar = nsFor(rows, "BM_BitPlanePalette/16/0");
  const double paletteBest = nsFor(rows, "BM_BitPlanePalette/16/1");
  // A MaDEC cycle is 3 comm rounds; normalize before comparing against the
  // one-round substrate bench (see BM_BitPlaneRound's comment).
  const double bitplaneRound1 = bitplane1 / 3.0;
  const double bitplaneRound8 = bitplane8 / 3.0;

  std::fprintf(out, "{\n  \"config\": {\"n\": %zu, \"avg_degree\": %.1f, "
               "\"threads\": %zu, \"host_cpus\": %u,\n"
               "    \"git_commit\": \"%s\", \"compiler\": \"%s\", "
               "\"bitplane_isa\": \"%s\"},\n",
               kSubstrateNodes, kSubstrateAvgDeg, kSubstrateThreads,
               std::thread::hardware_concurrency(), DIMA_GIT_COMMIT,
               kCompiler, bp::isaName(bp::activeIsa()));
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_round\": %.1f, "
                 "\"ops_per_s\": %.1f, \"items_per_s\": %.1f",
                 rows[i].name.c_str(), rows[i].nsPerIter,
                 rows[i].nsPerIter > 0 ? 1e9 / rows[i].nsPerIter : 0.0,
                 rows[i].itemsPerSecond);
    if (rows[i].boundaryArcFraction >= 0) {
      std::fprintf(out, ", \"boundary_arc_fraction\": %.4f",
                   rows[i].boundaryArcFraction);
    }
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"substrate_speedup_1t\": %.2f,\n",
               arena1 > 0 ? legacy1 / arena1 : 0.0);
  std::fprintf(out, "  \"substrate_speedup_8t\": %.2f,\n",
               arena8 > 0 ? legacy8 / arena8 : 0.0);
  std::fprintf(out, "  \"sparse_round_speedup_1t\": %.2f,\n",
               sparseArena1 > 0 ? sparseLegacy1 / sparseArena1 : 0.0);
  std::fprintf(out, "  \"sparse_round_speedup_8t\": %.2f,\n",
               sparseArena8 > 0 ? sparseLegacy8 / sparseArena8 : 0.0);
  std::fprintf(out, "  \"tail_round_speedup_1t\": %.2f,\n",
               tailRoundArena1 > 0 ? tailRoundLegacy1 / tailRoundArena1 : 0.0);
  std::fprintf(out, "  \"tail_round_speedup_8t\": %.2f,\n",
               tailRoundArena8 > 0 ? tailRoundLegacy8 / tailRoundArena8 : 0.0);
  std::fprintf(out, "  \"tail_run_speedup_8t\": %.2f,\n",
               tailFrontier > 0 ? tailFull / tailFrontier : 0.0);
  // Full-run MaDEC speedup of K shard driver threads over the single-arena
  // reference run on the same graph (colors bit-identical across rows; the
  // per-row boundary_arc_fraction above is the cross-shard tax each K pays).
  std::fprintf(out, "  \"shard_speedup_2\": %.2f,\n",
               shard2 > 0 ? shard1 / shard2 : 0.0);
  std::fprintf(out, "  \"shard_speedup_4\": %.2f,\n",
               shard4 > 0 ? shard1 / shard4 : 0.0);
  std::fprintf(out, "  \"shard_speedup_8\": %.2f,\n",
               shard8 > 0 ? shard1 / shard8 : 0.0);
  // Bit-plane engine round throughput vs the slot-arena substrate round
  // (per comm round; a MaDEC cycle on the bit-plane side also does all the
  // protocol work the substrate bench doesn't, so these understate the
  // engine — see BM_BitPlaneRound).
  std::fprintf(out, "  \"bitplane_speedup_1t\": %.2f,\n",
               bitplaneRound1 > 0 ? arena1 / bitplaneRound1 : 0.0);
  std::fprintf(out, "  \"bitplane_speedup_8t\": %.2f,\n",
               bitplaneRound8 > 0 ? arena8 / bitplaneRound8 : 0.0);
  std::fprintf(out, "  \"bitplane_palette_simd_speedup\": %.2f\n",
               paletteBest > 0 ? paletteScalar / paletteBest : 0.0);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_substrate.json (dense substrate speedup @%zu "
              "threads: %.2fx, sparse round: %.2fx, tail round: %.2fx, "
              "tail run: %.2fx, shard run: %.2fx @2 / %.2fx @4 / %.2fx @8, "
              "bit-plane round: %.2fx @1t / %.2fx @%zut, "
              "palette SIMD: %.2fx on %s)\n",
              kSubstrateThreads, arena8 > 0 ? legacy8 / arena8 : 0.0,
              sparseArena8 > 0 ? sparseLegacy8 / sparseArena8 : 0.0,
              tailRoundArena8 > 0 ? tailRoundLegacy8 / tailRoundArena8 : 0.0,
              tailFrontier > 0 ? tailFull / tailFrontier : 0.0,
              shard2 > 0 ? shard1 / shard2 : 0.0,
              shard4 > 0 ? shard1 / shard4 : 0.0,
              shard8 > 0 ? shard1 / shard8 : 0.0,
              bitplaneRound1 > 0 ? arena1 / bitplaneRound1 : 0.0,
              bitplaneRound8 > 0 ? arena8 / bitplaneRound8 : 0.0,
              kSubstrateThreads,
              paletteBest > 0 ? paletteScalar / paletteBest : 0.0,
              bp::isaName(bp::activeIsa()));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  writeJson(reporter.rows);
  return 0;
}
