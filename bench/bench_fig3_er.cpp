/// \file bench_fig3_er.cpp
/// FIG3 (paper §IV-A, Figure 3): Algorithm 1 on Erdős–Rényi graphs,
/// n ∈ {200, 400} × average degree ∈ {4, 8, 16}, 50 fresh graphs each.
///
/// Paper claims regenerated and checked:
///  * rounds grow linearly with Δ and are unaffected by n;
///  * colors are Δ or Δ+1 in the typical run, Δ+2 only exceptionally
///    (the paper saw 2 of 300 runs), never more.
///
/// The google-benchmark section times single runs per configuration so the
/// cost model (rounds × per-round work) is visible; the figure itself is
/// regenerated afterwards at full scale.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace dima;

void BM_MadecErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto avgDeg = static_cast<double>(state.range(1));
  support::Rng rng(1234);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDeg, rng);
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  std::size_t colors = 0;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    const coloring::EdgeColoringResult result =
        coloring::colorEdgesMadec(g, options);
    benchmark::DoNotOptimize(result.colors.data());
    rounds += result.metrics.computationRounds;
    colors = result.colorsUsed();
  }
  state.counters["delta"] = static_cast<double>(g.maxDegree());
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
  state.counters["colors"] = static_cast<double>(colors);
}

BENCHMARK(BM_MadecErdosRenyi)
    ->ArgsProduct({{200, 400}, {4, 8, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dima::bench::figureMain(
      argc, argv,
      [](std::size_t runs) { return dima::exp::runFigure3(0xf163ULL, runs); },
      "fig3_records.csv");
}
