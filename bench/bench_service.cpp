/// \file bench_service.cpp
/// Micro-benchmarks of the serve subsystem's per-command overheads, plus a
/// staleness-policy table. The end-to-end sustained-churn number
/// (commands/s through the real byte path) is `dimacol bench-serve`, which
/// commits BENCH_service.json; this binary answers the *why* behind it:
///
///  * encode/decode cost of one wire frame (the per-command floor),
///  * FrameReader streaming overhead at realistic chunk sizes,
///  * one repair epoch at various batch sizes (the amortization knob).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/service/driver.hpp"
#include "src/service/service.hpp"
#include "src/service/session.hpp"
#include "src/service/wire.hpp"
#include "src/support/table.hpp"

namespace {

using namespace dima;

void BM_EncodeCommand(benchmark::State& state) {
  service::CommandFrame f =
      service::makeFrame<service::ServiceKind::InsertEdge,
                         service::CommandFrame>();
  f.a = 3;
  f.b = 77;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    service::encodeCommand(f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeCommand);

void BM_DecodeCommandStream(benchmark::State& state) {
  // A realistic session chunk: 64 mixed commands in one buffer.
  service::StreamSpec spec;
  spec.commands = 64;
  spec.split = spec.commands;
  const service::StreamBundle bundle =
      service::buildStreams(spec, "/dev/null");
  for (auto _ : state) {
    service::CommandReader reader;
    reader.feed(bundle.full.data(), bundle.full.size());
    service::CommandFrame frame;
    std::string error;
    std::int64_t frames = 0;
    while (reader.next(&frame, &error) == service::DecodeStatus::Frame) {
      ++frames;
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 68);
}
BENCHMARK(BM_DecodeCommandStream);

void BM_RepairEpoch(benchmark::State& state) {
  // Cost of one repair epoch as a function of the drained batch size.
  const std::size_t batchSize = static_cast<std::size_t>(state.range(0));
  service::ServiceOptions options;
  options.policy.maxBatch = batchSize;
  options.policy.maxStaleness = 1u << 20;  // only the batch knob fires
  service::StreamSpec spec;
  spec.n = 128;
  spec.commands = 2048;
  spec.queryFraction = 0.0;
  const std::vector<service::CommandFrame> cmds =
      service::buildCommandList(spec);

  std::uint64_t epochs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    service::ColoringService svc(options);
    service::CommandFrame hello =
        service::makeFrame<service::ServiceKind::Hello,
                           service::CommandFrame>();
    hello.a = service::kServiceWireVersion;
    hello.b = spec.n;
    svc.handle(hello);
    state.ResumeTiming();
    for (const service::CommandFrame& cmd : cmds) svc.handle(cmd);
    epochs = svc.scheduler().epochsRun();
  }
  state.counters["epochs"] = static_cast<double>(epochs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cmds.size()));
}
BENCHMARK(BM_RepairEpoch)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

/// The policy table behind BENCH_service.json's config choice: sweep the
/// staleness bound and show throughput vs epoch batching on one stream.
void runPolicyTable() {
  std::printf("\n=== serve policy sweep (stream: 96 vertices, 1500 commands, "
              "25%% queries) ===\n");
  support::TextTable table({"staleness", "epochs", "mean batch", "p50 us",
                            "p99 us", "cmds/s"});
  service::StreamSpec spec;
  spec.commands = 1500;
  for (const std::size_t staleness : {0u, 2u, 8u, 32u}) {
    service::EpochPolicy policy;
    policy.maxBatch = 64;
    policy.maxStaleness = staleness;
    const service::ServeBenchReport r =
        service::runServeBench(spec, policy);
    table.addRowOf(staleness, r.epochs,
                   support::TextTable::format(r.meanEpochBatch),
                   r.p50RepairMicros, r.p99RepairMicros,
                   support::TextTable::format(r.commandsPerSec));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: staleness 0 forces an epoch before every query, so the\n"
      "mean batch stays small; relaxing the bound lets the scheduler\n"
      "amortize repairs over bigger batches at the price of Pending\n"
      "replies. BENCH_service.json pins the committed configuration.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runPolicyTable();
  return 0;
}
