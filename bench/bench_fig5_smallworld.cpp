/// \file bench_fig5_smallworld.cpp
/// FIG5 (paper §IV-C, Figure 5): Algorithm 1 on Watts–Strogatz small-world
/// graphs, n ∈ {16, 64, 256}, one sparse (k = 4) and one dense
/// (k ≈ n/6, matching the paper's reported dense-256 mean Δ ≈ 44.4)
/// configuration, 50 graphs each.
///
/// Paper observations regenerated and checked:
///  * rounds grow linearly with Δ, independent of n;
///  * every run stays below the 2Δ−1 worst case (Conjecture 1);
///  * Conjecture 2 (≤ Δ+1) is *not* supported on dense small worlds —
///    the paper saw up to Δ+5 on dense n = 256; the bench reports the
///    measured excess distribution for comparison.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace dima;

void BM_MadecSmallWorld(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  support::Rng rng(17);
  const graph::Graph g = graph::wattsStrogatz(n, k, 0.25, rng);
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    const coloring::EdgeColoringResult result =
        coloring::colorEdgesMadec(g, options);
    benchmark::DoNotOptimize(result.colors.data());
    rounds += result.metrics.computationRounds;
  }
  state.counters["delta"] = static_cast<double>(g.maxDegree());
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_MadecSmallWorld)
    ->Args({16, 4})
    ->Args({64, 10})
    ->Args({256, 4})
    ->Args({256, 42})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dima::bench::figureMain(
      argc, argv,
      [](std::size_t runs) { return dima::exp::runFigure5(0xf165ULL, runs); },
      "fig5_records.csv");
}
