/// \file bench_fig4_scalefree.cpp
/// FIG4 (paper §IV-B, Figure 4): Algorithm 1 on scale-free graphs,
/// n ∈ {100, 400} × attachment-weight powers {0.5, 1.0, 1.5}, 50 graphs
/// each ("alterations in weighting to create increasingly disparate
/// graphs").
///
/// Paper claims regenerated and checked:
///  * rounds grow at a constant rate with Δ;
///  * unlike the Erdős–Rényi runs, no scale-free run needed more than Δ
///    colors (hubs dominate Δ while most of the graph is sparse, so the
///    hub's edges always find low-indexed colors).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace dima;

void BM_MadecScaleFree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double power = static_cast<double>(state.range(1)) / 10.0;
  support::Rng rng(99);
  const graph::Graph g = graph::barabasiAlbert(n, 4, power, rng);
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    const coloring::EdgeColoringResult result =
        coloring::colorEdgesMadec(g, options);
    benchmark::DoNotOptimize(result.colors.data());
    rounds += result.metrics.computationRounds;
  }
  state.counters["delta"] = static_cast<double>(g.maxDegree());
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_MadecScaleFree)
    ->ArgsProduct({{100, 400}, {5, 10, 15}})  // power ×10
    ->Unit(benchmark::kMillisecond);

void BM_GenerateScaleFree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    support::Rng rng(seed++);
    benchmark::DoNotOptimize(graph::barabasiAlbert(n, 4, 1.0, rng).numEdges());
  }
}

BENCHMARK(BM_GenerateScaleFree)->Arg(100)->Arg(400)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dima::bench::figureMain(
      argc, argv,
      [](std::size_t runs) { return dima::exp::runFigure4(0xf164ULL, runs); },
      "fig4_records.csv");
}
