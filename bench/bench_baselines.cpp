/// \file bench_baselines.cpp
/// CMP (DESIGN.md §4): the paper positions Algorithm 1 as "competitive with
/// known algorithms in time complexity" with "high quality solutions"
/// (§I, Conjecture 2). This bench quantifies that against the comparators
/// the paper cites or implies:
///   * sequential greedy (any order) — the 2Δ−1 guarantee MaDEC matches;
///   * Misra–Gries — the Δ+1 sequential gold standard;
///   * the simple randomized distributed coloring of Marathe–Panconesi–
///     Risinger (reference [10], "PAL") — the natural distributed rival;
///   * for round counts, PAL's O(log n) versus MaDEC's O(Δ).
/// Every coloring is validated before being tabulated.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/baselines/greedy.hpp"
#include "src/baselines/misra_gries.hpp"
#include "src/baselines/pal.hpp"
#include "src/baselines/strong_greedy.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {

using namespace dima;

graph::Graph benchGraph() {
  support::Rng rng(777);
  return graph::erdosRenyiAvgDegree(200, 8.0, rng);
}

void BM_Madec(benchmark::State& state) {
  const graph::Graph g = benchGraph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(coloring::colorEdgesMadec(g, options).colors.data());
  }
}
BENCHMARK(BM_Madec)->Unit(benchmark::kMillisecond);

void BM_Greedy(benchmark::State& state) {
  const graph::Graph g = benchGraph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::greedyEdgeColoring(g, baselines::EdgeOrder::Random, seed++)
            .colors.data());
  }
}
BENCHMARK(BM_Greedy)->Unit(benchmark::kMillisecond);

void BM_MisraGries(benchmark::State& state) {
  const graph::Graph g = benchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::misraGriesEdgeColoring(g).colors.data());
  }
}
BENCHMARK(BM_MisraGries)->Unit(benchmark::kMillisecond);

void BM_Pal(benchmark::State& state) {
  const graph::Graph g = benchGraph();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    baselines::PalOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(
        baselines::palEdgeColoring(g, options).colors.data());
  }
}
BENCHMARK(BM_Pal)->Unit(benchmark::kMillisecond);

struct AlgoStats {
  support::OnlineStats colorExcess;  // colors − Δ
  support::OnlineStats rounds;       // distributed algorithms only
  std::size_t invalid = 0;
};

void runComparison() {
  struct Workload {
    std::string name;
    std::function<graph::Graph(support::Rng&)> make;
  };
  const std::vector<Workload> workloads = {
      {"erdos-renyi n=200 d=8",
       [](support::Rng& rng) {
         return graph::erdosRenyiAvgDegree(200, 8.0, rng);
       }},
      {"scale-free n=200 m=4",
       [](support::Rng& rng) {
         return graph::barabasiAlbert(200, 4, 1.0, rng);
       }},
      {"small-world n=128 k=8",
       [](support::Rng& rng) {
         return graph::wattsStrogatz(128, 8, 0.25, rng);
       }},
  };
  constexpr std::size_t kRuns = 20;

  std::printf("\n== CMP: Algorithm 1 vs sequential and distributed "
              "comparators (%zu runs each) ==\n\n", kRuns);
  support::TextTable table({"workload", "algorithm", "mean colors-D",
                            "worst colors-D", "mean rounds", "invalid"});
  for (const Workload& workload : workloads) {
    std::map<std::string, AlgoStats> stats;
    for (std::size_t run = 0; run < kRuns; ++run) {
      support::Rng rng(support::mix64(0xc0117a5e, run));
      const graph::Graph g = workload.make(rng);
      const auto delta = static_cast<double>(g.maxDegree());

      coloring::MadecOptions madecOptions;
      madecOptions.seed = run;
      const auto madec = coloring::colorEdgesMadec(g, madecOptions);
      AlgoStats& ms = stats["madec (distributed)"];
      ms.colorExcess.add(static_cast<double>(madec.colorsUsed()) - delta);
      ms.rounds.add(static_cast<double>(madec.metrics.computationRounds));
      if (!coloring::verifyEdgeColoring(g, madec.colors)) ++ms.invalid;

      const auto greedy = baselines::greedyEdgeColoring(
          g, baselines::EdgeOrder::Random, run);
      AlgoStats& gs = stats["greedy (sequential)"];
      gs.colorExcess.add(static_cast<double>(greedy.colorsUsed) - delta);
      if (!coloring::verifyEdgeColoring(g, greedy.colors)) ++gs.invalid;

      const auto mg = baselines::misraGriesEdgeColoring(g);
      AlgoStats& mgs = stats["misra-gries (sequential)"];
      mgs.colorExcess.add(static_cast<double>(mg.colorsUsed) - delta);
      if (!coloring::verifyEdgeColoring(g, mg.colors)) ++mgs.invalid;

      baselines::PalOptions palOptions;
      palOptions.seed = run;
      const auto pal = baselines::palEdgeColoring(g, palOptions);
      AlgoStats& ps = stats["pal [10] (distributed)"];
      ps.colorExcess.add(static_cast<double>(pal.colorsUsed) - delta);
      ps.rounds.add(static_cast<double>(pal.rounds));
      if (!coloring::verifyEdgeColoring(g, pal.colors)) ++ps.invalid;
    }
    for (const auto& [name, s] : stats) {
      table.addRowOf(workload.name, name,
                     support::TextTable::format(s.colorExcess.mean()),
                     support::TextTable::format(s.colorExcess.max()),
                     s.rounds.count() > 0
                         ? support::TextTable::format(s.rounds.mean())
                         : std::string("-"),
                     s.invalid);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: MaDEC should sit between Misra-Gries (D+1) and greedy in\n"
      "quality while needing only O(D) distributed rounds; PAL converges in\n"
      "fewer rounds (O(log n)) but pays for it with a (1+eps)D palette.\n");
}

void runStrongComparison() {
  std::printf("\n== CMP-S: Algorithm 2 vs the sequential strong-coloring "
              "greedy (10 runs) ==\n\n");
  support::TextTable table({"algorithm", "mean colors", "vs clique bound",
                            "mean rounds", "invalid"});
  support::OnlineStats distColors, distRatio, distRounds;
  support::OnlineStats seqColors, seqRatio;
  std::size_t invalidDist = 0, invalidSeq = 0;
  for (std::uint64_t run = 0; run < 10; ++run) {
    support::Rng rng(support::mix64(0xcafe5, run));
    const graph::Graph g = graph::erdosRenyiAvgDegree(120, 6.0, rng);
    const graph::Digraph d(g);
    const auto bound =
        static_cast<double>(graph::strongColoringLowerBound(g));

    coloring::Dima2EdOptions options;
    options.seed = run;
    const auto dist = coloring::colorArcsDima2Ed(d, options);
    if (!coloring::verifyStrongArcColoring(d, dist.colors)) ++invalidDist;
    distColors.add(static_cast<double>(dist.colorsUsed()));
    distRatio.add(static_cast<double>(dist.colorsUsed()) / bound);
    distRounds.add(static_cast<double>(dist.metrics.computationRounds));

    const auto seq = baselines::greedyStrongArcColoring(d);
    if (!coloring::verifyStrongArcColoring(d, seq.colors)) ++invalidSeq;
    seqColors.add(static_cast<double>(seq.colorsUsed));
    seqRatio.add(static_cast<double>(seq.colorsUsed) / bound);
  }
  table.addRowOf("dima2ed strict (distributed)",
                 support::TextTable::format(distColors.mean()),
                 support::TextTable::format(distRatio.mean()),
                 support::TextTable::format(distRounds.mean()), invalidDist);
  table.addRowOf("greedy (sequential)",
                 support::TextTable::format(seqColors.mean()),
                 support::TextTable::format(seqRatio.mean()), "-",
                 invalidSeq);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the distributed strong coloring pays a modest color premium\n"
      "over the sequential greedy (both sit a small factor above the clique\n"
      "lower bound) in exchange for one-hop locality and O(D) rounds.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runComparison();
  runStrongComparison();
  return 0;
}
