/// \file bench_fig6_directed_er.cpp
/// FIG6 (paper §IV-D, Figure 6): Algorithm 2 (DiMa2Ed) strong distance-2
/// coloring of symmetric-digraph Erdős–Rényi graphs, n ∈ {200, 400} ×
/// average degree ∈ {4, 8}, 50 graphs each.
///
/// Paper claims regenerated and checked:
///  * rounds scale with Δ, not with n (the paper found n = 400 "solved in
///    almost identical time", variance attributable to slightly higher Δ);
///  * every run is a correct strong coloring (checked by the independent
///    distance-2 validator — the paper's Proposition 5);
///  * additionally, the pseudo-code-faithful mode is audited on a
///    sub-sample to quantify the same-round conflict holes that motivated
///    the strict tentative/abort handshake (DESIGN.md §2).
///
/// Note on constants: the paper reports ≈ 4Δ rounds. This reproduction
/// converges in O(Δ) but with a larger constant (≈ 8–10Δ): a node must win
/// one pairing per incident arc — 2δ of them — at a per-round success rate
/// bounded by ~1/4, plus color-rejection retries. The *shape* (linear in Δ,
/// n-independent) is the reproducible claim; the constant depends on
/// under-specified details of the authors' simulator.

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/baselines/strong_greedy.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace dima;

void BM_Dima2EdStrict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto avgDeg = static_cast<double>(state.range(1));
  support::Rng rng(31);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDeg, rng);
  const graph::Digraph d(g);
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    coloring::Dima2EdOptions options;
    options.seed = seed++;
    const coloring::ArcColoringResult result =
        coloring::colorArcsDima2Ed(d, options);
    benchmark::DoNotOptimize(result.colors.data());
    rounds += result.metrics.computationRounds;
  }
  state.counters["delta"] = static_cast<double>(g.maxDegree());
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_Dima2EdStrict)
    ->ArgsProduct({{200, 400}, {4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_Dima2EdPaperMode(benchmark::State& state) {
  support::Rng rng(32);
  const graph::Graph g = graph::erdosRenyiAvgDegree(200, 4.0, rng);
  const graph::Digraph d(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    coloring::Dima2EdOptions options;
    options.seed = seed++;
    options.mode = coloring::Dima2EdMode::Paper;
    benchmark::DoNotOptimize(
        coloring::colorArcsDima2Ed(d, options).colors.data());
  }
}

BENCHMARK(BM_Dima2EdPaperMode)->Unit(benchmark::kMillisecond);

void BM_StrongGreedyBaseline(benchmark::State& state) {
  support::Rng rng(33);
  const graph::Graph g = graph::erdosRenyiAvgDegree(
      static_cast<std::size_t>(state.range(0)), 8.0, rng);
  const graph::Digraph d(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::greedyStrongArcColoring(d).colors.data());
  }
}

BENCHMARK(BM_StrongGreedyBaseline)->Arg(200)->Arg(400)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dima::bench::figureMain(
      argc, argv,
      [](std::size_t runs) { return dima::exp::runFigure6(0xf166ULL, runs); },
      "fig6_records.csv");
}
