/// \file bench_dynamic_churn.cpp
/// DYNAMIC (beyond the paper): the paper's target application — channel
/// assignment under node mobility — is a moving target, yet its evaluation
/// colors static graphs. This bench measures what the dynamic subsystem
/// buys: incremental frontier repair vs from-scratch recoloring on an ER
/// graph under sustained topology churn.
///
/// The work proxy is `automaton cycles × participating vertices`: a full
/// recolor drives all n nodes for its whole run, while the incremental
/// repair drives only the dirty frontier (endpoints of inserted/evicted
/// edges). The acceptance target is ≥5× less work per batch at 1% churn on
/// the n=10000, Δ≈16 configuration; the table sweeps churn rates to show
/// where the advantage erodes.
///
/// The google-benchmark section times one batch end-to-end (draw + apply +
/// repair) at several churn rates so the wall-clock story is visible next
/// to the cycle accounting.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "src/dynamic/churn.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/graph/generators.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {

using namespace dima;

dynamic::DynamicGraph makeOverlay(std::size_t n, double avgDeg,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  return dynamic::DynamicGraph(graph::erdosRenyiAvgDegree(n, avgDeg, rng));
}

void BM_ChurnBatchIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 1000.0;
  dynamic::DynamicGraph g = makeOverlay(n, 8.0, 5);
  dynamic::IncrementalRecolorer recolorer(g, {.seed = 2});
  recolorer.repair();
  dynamic::EventStream stream({.seed = 11, .rate = rate});
  for (auto _ : state) {
    recolorer.applyBatch(stream.nextBatch(g));
    const dynamic::RepairStats stats = recolorer.repair();
    benchmark::DoNotOptimize(stats.cycles);
  }
}
BENCHMARK(BM_ChurnBatchIncremental)
    ->Args({2000, 10})   // 1% churn per batch
    ->Args({2000, 50})   // 5%
    ->Args({2000, 200})  // 20%
    ->Unit(benchmark::kMicrosecond);

void BM_ChurnBatchFullRecolor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dynamic::DynamicGraph g = makeOverlay(n, 8.0, 5);
  dynamic::EventStream stream({.seed = 11, .rate = 0.01});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stream.nextBatch(g);
    benchmark::DoNotOptimize(
        dynamic::fullRecolor(g, {.seed = seed++}).colors.data());
  }
}
BENCHMARK(BM_ChurnBatchFullRecolor)->Arg(2000)->Unit(benchmark::kMicrosecond);

/// Full-scale run of the acceptance configuration: ER n=10000 with average
/// degree 16, a dozen batches per churn rate, every batch validated.
void runChurnTable() {
  constexpr std::size_t kNodes = 10000;
  constexpr double kAvgDegree = 16.0;
  constexpr int kBatches = 12;

  std::printf("\n== DYNAMIC: incremental frontier repair vs full recolor "
              "(ER n=%zu, avg degree %.0f, %d batches per rate) ==\n\n",
              kNodes, kAvgDegree, kBatches);
  support::TextTable table({"churn/batch", "mean frontier", "mean cycles",
                            "inc work", "full work", "advantage", "invalid"});

  bool onePercentMeetsTarget = false;
  double onePercentAdvantage = 0.0;
  for (const double rate : {0.001, 0.01, 0.05, 0.20}) {
    dynamic::DynamicGraph g = makeOverlay(kNodes, kAvgDegree, 0xd1a);
    dynamic::IncrementalRecolorer recolorer(g, {.seed = 3});
    recolorer.repair();
    dynamic::EventStream stream(
        {.seed = support::mix64(0xc4, static_cast<std::uint64_t>(rate * 1e4)),
         .rate = rate});

    support::OnlineStats frontier, cycles;
    double incWork = 0.0;
    double fullWork = 0.0;
    std::size_t invalid = 0;
    for (int batch = 0; batch < kBatches; ++batch) {
      recolorer.applyBatch(stream.nextBatch(g));
      const dynamic::RepairStats stats = recolorer.repair();
      if (!stats.converged ||
          !dynamic::verifyDynamicColoring(g, recolorer.colors())) {
        ++invalid;
      }
      frontier.add(static_cast<double>(stats.frontierVertices));
      cycles.add(static_cast<double>(stats.cycles));
      incWork += static_cast<double>(stats.activeWork());
      // From-scratch comparator on the same post-batch topology; its work
      // proxy is cycles × n because every node runs for the whole pass.
      const dynamic::FullRecolorResult full =
          dynamic::fullRecolor(g, {.seed = 17 + static_cast<std::uint64_t>(
                                                    batch)});
      if (!full.converged ||
          !dynamic::verifyDynamicColoring(g, full.colors)) {
        ++invalid;
      }
      fullWork +=
          static_cast<double>(full.cycles) * static_cast<double>(kNodes);
    }

    const double advantage = incWork > 0.0 ? fullWork / incWork : 0.0;
    if (rate == 0.01) {
      onePercentMeetsTarget = advantage >= 5.0 && invalid == 0;
      onePercentAdvantage = advantage;
    }
    table.addRowOf(support::TextTable::format(rate * 100.0) + "%",
                   support::TextTable::format(frontier.mean()),
                   support::TextTable::format(cycles.mean()),
                   support::TextTable::format(incWork),
                   support::TextTable::format(fullWork),
                   support::TextTable::format(advantage) + "x", invalid);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: work = automaton cycles x participating vertices, summed "
      "over\nthe batches. At 1%% churn the incremental repair touches only "
      "the dirty\nfrontier, so the advantage target is >= 5x: %.1fx "
      "measured — %s.\nHigher churn rates widen the frontier until repair "
      "approaches a full\nrecolor, which is the expected crossover.\n",
      onePercentAdvantage,
      onePercentMeetsTarget ? "MET" : "NOT MET");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runChurnTable();
  return 0;
}
