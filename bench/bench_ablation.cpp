/// \file bench_ablation.cpp
/// ABL (DESIGN.md §4): ablations over the design choices the reproduction
/// had to pin down, each tied to a claim in the paper's analysis:
///
///  1. invitor-coin bias — Proposition 1's 1/4 pairing bound assumes the
///     fair coin; the sweep shows the round constant degrading toward
///     either extreme, with the minimum near 1/2.
///  2. matching participation rate — the empirical per-round pairing
///     probability behind every O(Δ) claim.
///  3. DiMa2Ed strict vs paper mode — rounds paid vs conflicts leaked.
///  4. color-choice policy — the literal lowest-index rule livelocks
///     (documented deviation); the expanding-window rule converges.
///  5. message-drop sensitivity — convergence and half-commits vs loss
///     rate, separating MaDEC's liveness-only dependence from DiMa2Ed's
///     safety dependence on the E-state gossip.
///  6. the synchrony assumption's price — MaDEC run unmodified on an
///     asynchronous point-to-point network through the α-synchronizer
///     (bit-identical coloring, an order of magnitude more messages).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "src/automata/discovery.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/experiments/profile.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {

using namespace dima;

graph::Graph ablationGraph(std::uint64_t salt = 0) {
  support::Rng rng(support::mix64(0xab1a710, salt));
  return graph::erdosRenyiAvgDegree(200, 8.0, rng);
}

void BM_MadecBias(benchmark::State& state) {
  const double bias = static_cast<double>(state.range(0)) / 100.0;
  const graph::Graph g = ablationGraph();
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    coloring::MadecOptions options;
    options.seed = seed++;
    options.invitorBias = bias;
    const auto result = coloring::colorEdgesMadec(g, options);
    benchmark::DoNotOptimize(result.colors.data());
    rounds += result.metrics.computationRounds;
  }
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MadecBias)->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)->Unit(
    benchmark::kMillisecond);

void ablateBias() {
  std::printf("\n-- ABL-1: invitor-coin bias (Prop. 1 fixes 1/2) --\n\n");
  support::TextTable table(
      {"p(invitor)", "mean rounds", "rounds/D", "mean colors-D"});
  for (double bias : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    support::OnlineStats rounds, roundsPerDelta, excess;
    for (std::uint64_t run = 0; run < 15; ++run) {
      const graph::Graph g = ablationGraph(run);
      coloring::MadecOptions options;
      options.seed = run;
      options.invitorBias = bias;
      const auto result = coloring::colorEdgesMadec(g, options);
      rounds.add(static_cast<double>(result.metrics.computationRounds));
      roundsPerDelta.add(static_cast<double>(result.metrics.computationRounds) /
                         static_cast<double>(g.maxDegree()));
      excess.add(static_cast<double>(result.colorsUsed()) -
                 static_cast<double>(g.maxDegree()));
    }
    table.addRowOf(support::TextTable::format(bias),
                   support::TextTable::format(rounds.mean()),
                   support::TextTable::format(roundsPerDelta.mean()),
                   support::TextTable::format(excess.mean()));
  }
  std::printf("%s", table.render().c_str());
}

void ablateParticipation() {
  std::printf(
      "\n-- ABL-2: per-round pairing probability (Prop. 1 predicts a "
      "constant in [1/4, 1/2]) --\n\n");
  support::TextTable table({"bias", "participation rate"});
  support::Rng rng(55);
  const graph::Graph g = graph::randomRegular(120, 6, rng);
  for (double bias : {0.25, 0.5, 0.75}) {
    automata::DiscoveryStats pooled;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto result = automata::maximalMatching(g, seed, bias);
      pooled.activeNodeRounds += result.stats.activeNodeRounds;
      pooled.matchedNodeRounds += result.stats.matchedNodeRounds;
    }
    table.addRowOf(support::TextTable::format(bias),
                   support::TextTable::format(pooled.participationRate()));
  }
  std::printf("%s", table.render().c_str());
}

void ablateStrictVsPaper() {
  std::printf(
      "\n-- ABL-3: DiMa2Ed strict handshake vs pseudo-code-faithful mode "
      "--\n\n");
  support::TextTable table({"mode", "mean rounds", "comm rounds/cycle",
                            "conflicting pairs (total)", "invalid runs"});
  for (auto mode :
       {coloring::Dima2EdMode::Paper, coloring::Dima2EdMode::Strict}) {
    support::OnlineStats rounds;
    std::size_t conflicts = 0, invalid = 0;
    std::uint64_t commPerCycle = 0;
    for (std::uint64_t run = 0; run < 10; ++run) {
      support::Rng rng(support::mix64(0x57a7e, run));
      const graph::Graph g = graph::erdosRenyiAvgDegree(150, 6.0, rng);
      const graph::Digraph d(g);
      coloring::Dima2EdOptions options;
      options.seed = run;
      options.mode = mode;
      const auto result = coloring::colorArcsDima2Ed(d, options);
      rounds.add(static_cast<double>(result.metrics.computationRounds));
      commPerCycle = result.metrics.computationRounds > 0
                         ? result.metrics.commRounds /
                               result.metrics.computationRounds
                         : 0;
      conflicts += coloring::countStrongConflicts(d, result.colors);
      if (!coloring::verifyStrongArcColoring(d, result.colors)) ++invalid;
    }
    table.addRowOf(
        mode == coloring::Dima2EdMode::Paper ? "paper (Proc. 2-b only)"
                                             : "strict (+tentative/abort)",
        support::TextTable::format(rounds.mean()), commPerCycle, conflicts,
        invalid);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: the strict handshake costs 2 extra comm rounds per cycle "
      "and\neliminates every same-round conflict the faithful mode leaks.\n");
}

void ablateColorPolicy() {
  std::printf(
      "\n-- ABL-4: DiMa2Ed color policy (lowest-index can livelock; "
      "expanding window converges) --\n\n");
  support::TextTable table(
      {"policy", "converged", "mean rounds (converged)", "mean colors"});
  for (auto policy : {coloring::ColorPolicy::LowestIndex,
                      coloring::ColorPolicy::ExpandingWindow}) {
    std::size_t converged = 0;
    support::OnlineStats rounds, colors;
    for (std::uint64_t run = 0; run < 10; ++run) {
      support::Rng rng(support::mix64(0x9011c4, run));
      const graph::Graph g = graph::erdosRenyiAvgDegree(120, 6.0, rng);
      const graph::Digraph d(g);
      coloring::Dima2EdOptions options;
      options.seed = run;
      options.policy = policy;
      options.maxCycles = 600;
      const auto result = coloring::colorArcsDima2Ed(d, options);
      if (result.metrics.converged) {
        ++converged;
        rounds.add(static_cast<double>(result.metrics.computationRounds));
      }
      colors.add(static_cast<double>(result.colorsUsed()));
    }
    table.addRowOf(policy == coloring::ColorPolicy::LowestIndex
                       ? "lowest-index (literal)"
                       : "expanding-window (default)",
                   std::to_string(converged) + "/10",
                   rounds.count() ? support::TextTable::format(rounds.mean())
                                  : std::string("-"),
                   support::TextTable::format(colors.mean()));
  }
  std::printf("%s", table.render().c_str());
}

void ablateDrops() {
  std::printf(
      "\n-- ABL-5: message-loss sensitivity (600-round cap) --\n\n");
  support::TextTable table({"drop prob", "algorithm", "converged",
                            "half-committed", "conflicts (agreed)"});
  for (double drop : {0.0, 0.01, 0.05, 0.2}) {
    // MaDEC: loses liveness only.
    {
      std::size_t converged = 0, halves = 0, conflicts = 0;
      for (std::uint64_t run = 0; run < 8; ++run) {
        support::Rng rng(support::mix64(0xd409, run));
        const graph::Graph g = graph::erdosRenyiAvgDegree(100, 6.0, rng);
        coloring::MadecOptions options;
        options.seed = run;
        options.faults.dropProbability = drop;
        options.maxCycles = 600;
        const auto result = coloring::colorEdgesMadec(g, options);
        if (result.metrics.converged) ++converged;
        halves += result.halfCommitted.size();
        auto agreed = result.colors;
        for (graph::EdgeId e : result.halfCommitted) {
          agreed[e] = coloring::kNoColor;
        }
        if (!coloring::verifyEdgeColoring(g, agreed, true)) ++conflicts;
      }
      table.addRowOf(support::TextTable::format(drop), "madec",
                     std::to_string(converged) + "/8", halves, conflicts);
    }
    // DiMa2Ed: loses distance-2 safety too (gossip-dependent).
    {
      std::size_t converged = 0, halves = 0;
      std::size_t conflicts = 0;
      for (std::uint64_t run = 0; run < 8; ++run) {
        support::Rng rng(support::mix64(0xd410, run));
        const graph::Graph g = graph::erdosRenyiAvgDegree(60, 4.0, rng);
        const graph::Digraph d(g);
        coloring::Dima2EdOptions options;
        options.seed = run;
        options.faults.dropProbability = drop;
        options.maxCycles = 600;
        const auto result = coloring::colorArcsDima2Ed(d, options);
        if (result.metrics.converged) ++converged;
        halves += result.halfCommitted.size();
        auto agreed = result.colors;
        for (graph::ArcId a : result.halfCommitted) {
          agreed[a] = coloring::kNoColor;
        }
        conflicts += coloring::countStrongConflicts(d, agreed);
      }
      table.addRowOf(support::TextTable::format(drop), "dima2ed-strict",
                     std::to_string(converged) + "/8", halves, conflicts);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: MaDEC keeps (masked) safety at any loss rate and only "
      "stalls;\nDiMa2Ed additionally accumulates distance-2 conflicts once "
      "gossip is lost,\nconfirming that the paper's reliability assumption "
      "is load-bearing for\nAlgorithm 2 but only a liveness matter for "
      "Algorithm 1.\n");
}

void ablateSynchronizer() {
  std::printf(
      "\n-- ABL-6: the price of the synchrony assumption "
      "(alpha-synchronizer on an async network; identical colorings) --\n\n");
  support::TextTable table({"workload", "synchronizer", "sync broadcasts",
                            "async payload", "async control",
                            "overhead factor", "sim time / round"});
  for (double deg : {4.0, 8.0}) {
    // β needs a connected graph: use a small-world sample.
    support::Rng rng(support::mix64(0xa57ac, static_cast<std::uint64_t>(deg)));
    const graph::Graph g = graph::wattsStrogatz(
        100, static_cast<std::size_t>(deg), 0.25, rng);
    coloring::MadecOptions options;
    options.seed = 21;
    const auto sync = coloring::colorEdgesMadec(g, options);
    for (const auto kind :
         {coloring::Synchronizer::Alpha, coloring::Synchronizer::Beta}) {
      net::AsyncRunResult stats;
      const auto async =
          coloring::colorEdgesMadecAsync(g, options, {}, &stats, kind);
      DIMA_REQUIRE(sync.colors == async.colors,
                   "async run diverged from synchronous run");
      std::ostringstream label;
      label << "ws n=100 k=" << deg;
      const double overhead =
          static_cast<double>(stats.totalMessages()) /
          static_cast<double>(sync.metrics.broadcasts);
      table.addRowOf(
          label.str(),
          kind == coloring::Synchronizer::Alpha ? "alpha (per-neighbor)"
                                                : "beta (tree wave)",
          sync.metrics.broadcasts, stats.payloadMessages,
          stats.ackMessages + stats.safeMessages,
          support::TextTable::format(overhead),
          support::TextTable::format(
              stats.simTime /
              static_cast<double>(sync.metrics.computationRounds)));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: dropping the shared radio medium and the global clock "
      "costs\n~an order of magnitude in messages (deg-many unicasts per "
      "broadcast, then\nack+safe traffic per pulse) while producing the "
      "identical coloring —\nthe paper's model assumptions are worth "
      "exactly this much.\n");
}

void ablateTerminationDetection() {
  std::printf(
      "\n-- ABL-7: completion tails and the cost of *knowing* you are done "
      "--\n\n");
  support::TextTable table({"workload", "p50 done", "p90 done", "last done",
                            "tree build", "root detects", "overhead"});
  for (double deg : {4.0, 8.0, 16.0}) {
    // Connected sample (retry the seed until connected).
    graph::Graph g(0);
    for (std::uint64_t salt = 0; salt < 50; ++salt) {
      support::Rng rng(support::mix64(0x7e4a1, salt) + //
                       static_cast<std::uint64_t>(deg));
      graph::Graph candidate = graph::erdosRenyiAvgDegree(200, deg, rng);
      if (graph::isConnected(candidate)) {
        g = std::move(candidate);
        break;
      }
    }
    if (g.numVertices() == 0) continue;
    coloring::MadecOptions options;
    options.seed = 33;
    const exp::CompletionProfile profile =
        exp::madecCompletionProfile(g, options);
    std::ostringstream label;
    label << "er n=200 d=" << deg;
    table.addRowOf(label.str(), support::TextTable::format(profile.p50),
                   support::TextTable::format(profile.p90),
                   profile.lastCompletion, profile.treeBuildRounds,
                   profile.detectionRound,
                   profile.detectionRound - profile.lastCompletion);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "reading: most nodes finish in roughly half the reported round "
      "count\n(the figures plot a max statistic), and a deployment pays "
      "only a few\nextra rounds (~tree height) before the root knows the "
      "run is over.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ablateBias();
  ablateParticipation();
  ablateStrictVsPaper();
  ablateColorPolicy();
  ablateDrops();
  ablateSynchronizer();
  ablateTerminationDetection();
  return 0;
}
