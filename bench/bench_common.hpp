#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure benches: a main() that runs the binary's
/// google-benchmark timing section and then regenerates the paper artifact
/// at full scale, printing the claim checklist and writing the raw CSV next
/// to the binary.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "src/experiments/figures.hpp"
#include "src/support/stopwatch.hpp"

namespace dima::bench {

/// Number of runs per configuration for the full regeneration; the paper
/// used 50. Override with DIMA_RUNS_PER_SPEC for quick local iterations.
inline std::size_t runsPerSpec() {
  if (const char* env = std::getenv("DIMA_RUNS_PER_SPEC")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 50;
}

/// Runs benchmarks, then the figure regeneration, then prints and saves.
inline int figureMain(int argc, char** argv,
                      const std::function<exp::FigureReport(std::size_t)>& run,
                      const std::string& csvName) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  support::Stopwatch watch;
  const exp::FigureReport report = run(runsPerSpec());
  std::printf("\n%s", report.render().c_str());
  std::printf("\n  runs: %zu, wall time: %.1fs, overall: %s\n",
              report.records.size(), watch.seconds(),
              report.reproduced() ? "REPRODUCED" : "see deviations above");
  std::ofstream csv(csvName);
  if (csv) {
    csv << report.csv;
    std::printf("  raw per-run records: %s\n", csvName.c_str());
  }
  return 0;
}

}  // namespace dima::bench
